#include "src/core/sharded_store.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>
#include <utility>

#include "src/persist/snapshot.h"
#include "src/persist/store_codec.h"
#include "src/util/mutex.h"
#include "src/util/thread_pool.h"

namespace pnw::core {

namespace {

/// SplitMix64 finalizer: store keys are often sequential, so the router
/// must mix before masking or shard 0 would take every run of small keys.
uint64_t MixKey(uint64_t key) {
  uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Per-shard share of `total` buckets: ceiling division plus ~4 sigma of
/// Binomial(total, 1/shards) headroom, so a shard that draws an unlucky
/// (but statistically ordinary) excess of keys still fits.
size_t PerShardBuckets(size_t total, size_t shards) {
  const size_t base = (total + shards - 1) / shards;
  if (shards == 1) {
    return base;
  }
  const auto sigma = static_cast<size_t>(
      std::ceil(4.0 * std::sqrt(static_cast<double>(base))));
  return base + std::max<size_t>(8, sigma);
}

}  // namespace

double ShardedMetrics::PutImbalance() const {
  if (shards.empty() || totals.puts == 0) {
    return 1.0;
  }
  uint64_t max_puts = 0;
  for (const auto& s : shards) {
    max_puts = std::max(max_puts, s.puts);
  }
  const double mean = static_cast<double>(totals.puts) /
                      static_cast<double>(shards.size());
  return mean == 0.0 ? 1.0 : static_cast<double>(max_puts) / mean;
}

uint32_t ShardedMetrics::MaxBucketWrites() const {
  uint32_t max_writes = 0;
  for (const auto& s : shards) {
    max_writes = std::max(max_writes, s.max_bucket_writes);
  }
  return max_writes;
}

double ShardedMetrics::MaxShardDeviceNs() const {
  double max_ns = 0.0;
  for (const auto& s : shards) {
    max_ns = std::max(max_ns, s.device_ns);
  }
  return max_ns;
}

std::string ShardedMetrics::ToString() const {
  std::ostringstream os;
  os << totals.ToString() << " shards=" << shards.size()
     << " put_imbalance=" << PutImbalance()
     << " max_bucket_writes=" << MaxBucketWrites();
  return os.str();
}

ShardedPnwStore::ShardedPnwStore(const ShardedOptions& options)
    : options_(options) {}

ShardedPnwStore::~ShardedPnwStore() { StopBackgroundMigration(); }

Result<std::unique_ptr<ShardedPnwStore>> ShardedPnwStore::Open(
    const ShardedOptions& options) {
  const size_t n = options.num_shards;
  if (n == 0 || (n & (n - 1)) != 0) {
    return Status::InvalidArgument("num_shards must be a power of two");
  }
  if (options.split_buckets && options.store.initial_buckets < n) {
    return Status::InvalidArgument(
        "initial_buckets must be >= num_shards to split across shards");
  }
  PnwOptions per_shard = options.store;
  if (options.split_buckets) {
    per_shard.initial_buckets =
        PerShardBuckets(options.store.initial_buckets, n);
    per_shard.capacity_buckets = std::max(
        per_shard.initial_buckets,
        PerShardBuckets(options.store.capacity_buckets, n));
  }
  std::unique_ptr<ShardedPnwStore> store(new ShardedPnwStore(options));
  store->shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PnwOptions shard_options = per_shard;
    // De-correlate per-shard K-means initializations.
    shard_options.seed = options.store.seed + i;
    auto shard = PnwStore::Open(shard_options);
    if (!shard.ok()) {
      return shard.status();
    }
    store->shards_.push_back(std::move(shard.value()));
  }
  if (options.background_migration) {
    PNW_RETURN_IF_ERROR(store->StartBackgroundMigration());
  }
  return store;
}

size_t ShardedPnwStore::ShardOf(uint64_t key) const {
  return MixKey(key) & (shards_.size() - 1);
}

std::string ShardedPnwStore::ShardSnapshotName(size_t i) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04zu.snap", i);
  return name;
}

namespace {

/// MANIFEST section id (the manifest is a one-section snapshot container).
constexpr uint32_t kManifestSection = 1;

/// Workers for parallel shard checkpoint/recovery: one per shard, capped
/// by the machine's core count.
size_t CheckpointThreads(size_t num_shards) {
  const size_t hw = std::max<unsigned>(1, std::thread::hardware_concurrency());
  return std::max<size_t>(1, std::min(num_shards, hw));
}

/// Directory of one checkpoint generation inside the checkpoint dir.
std::string EpochDirName(uint64_t epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "epoch-%06llu",
                static_cast<unsigned long long>(epoch));
  return name;
}

}  // namespace

Status ShardedPnwStore::Checkpoint(const std::string& dir) {
  // Each checkpoint writes a fresh generation directory; the manifest
  // rename below is the commit point, so a crash anywhere before it
  // leaves the previous generation (and the manifest pointing at it)
  // untouched.
  const uint64_t epoch = checkpoint_epoch_ + 1;
  const std::string epoch_dir = dir + "/" + EpochDirName(epoch);
  std::error_code ec;
  std::filesystem::create_directories(epoch_dir, ec);
  if (ec) {
    return Status::Internal("cannot create checkpoint directory " +
                            epoch_dir + ": " + ec.message());
  }
  // Phase 1: snapshots only. Every shard keeps logging into its
  // *committed* generation's op-log, so a failure anywhere up to the
  // manifest commit leaves the durable state exactly as before this call
  // -- no write is ever captured only by an uncommitted generation.
  std::vector<Status> statuses(shards_.size());
  {
    ThreadPool pool(CheckpointThreads(shards_.size()));
    for (size_t i = 0; i < shards_.size(); ++i) {
      pool.Submit([this, &epoch_dir, &statuses, i] {
        // Exclusive: the snapshot must see a quiesced shard, so in-flight
        // shared-lock readers drain first and new ones wait; readers of
        // *other* shards are unaffected (this is the checkpoint-vs-reader
        // interlock).
        PnwStore& shard = *shards_[i];
        util::WriterLock lock(shard.mu());
        statuses[i] =
            shard.WriteCheckpoint(epoch_dir + "/" + ShardSnapshotName(i));
      });
    }
    pool.Wait();
  }
  for (const Status& s : statuses) {
    PNW_RETURN_IF_ERROR(s);
  }
  persist::SnapshotWriter manifest(kManifestVersion);
  auto& w = manifest.AddSection(kManifestSection);
  w.PutU64(shards_.size());
  w.PutBool(options_.split_buckets);
  w.PutU64(epoch);
  persist::EncodePnwOptions(options_.store, w);
  w.PutBool(options_.background_migration);
  w.PutU64(options_.migration_interval_ms);
  w.PutU64(options_.migration_max_buckets);
  PNW_RETURN_IF_ERROR(manifest.WriteToFile(dir + "/" + kManifestName));
  checkpoint_epoch_ = epoch;
  // Phase 2, after the commit point: switch every shard's op-log to the
  // new generation. Ops a shard acknowledges between the manifest rename
  // and its own switch land in the old generation's log only -- the one
  // bounded loss window a crash in this phase can cause.
  {
    ThreadPool pool(CheckpointThreads(shards_.size()));
    for (size_t i = 0; i < shards_.size(); ++i) {
      pool.Submit([this, &epoch_dir, &statuses, i] {
        PnwStore& shard = *shards_[i];
        util::WriterLock lock(shard.mu());
        statuses[i] =
            shard.FinishCheckpoint(epoch_dir + "/" + ShardSnapshotName(i));
      });
    }
    pool.Wait();
  }
  for (const Status& s : statuses) {
    PNW_RETURN_IF_ERROR(s);
  }
  // Only after the new manifest is durable: drop superseded generations
  // (and any partial ones a crashed checkpoint left). Failures here are
  // ignored -- leftovers waste disk but are never opened.
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_directory() &&
        entry.path().filename().string().rfind("epoch-", 0) == 0 &&
        entry.path().filename().string() != EpochDirName(epoch)) {
      std::filesystem::remove_all(entry.path(), ec);
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<ShardedPnwStore>> ShardedPnwStore::Open(
    const std::string& dir, const persist::RecoveryOptions& recovery) {
  auto parsed = persist::SnapshotReader::FromFile(dir + "/" + kManifestName,
                                                  kManifestVersion);
  if (!parsed.ok()) {
    if (parsed.status().IsNotFound()) {
      return Status::NotFound(
          dir + " has no " + std::string(kManifestName) +
          " -- not a sharded checkpoint, or the checkpoint never finished");
    }
    return parsed.status();
  }
  auto section = parsed.value().Section(kManifestSection);
  if (!section.ok()) {
    return Status::Corruption("sharded manifest has no content section");
  }
  persist::BufferReader& r = section.value();
  ShardedOptions options;
  uint64_t num_shards = 0;
  uint64_t epoch = 0;
  PNW_RETURN_IF_ERROR(r.GetU64(&num_shards));
  PNW_RETURN_IF_ERROR(r.GetBool(&options.split_buckets));
  PNW_RETURN_IF_ERROR(r.GetU64(&epoch));
  PNW_RETURN_IF_ERROR(persist::DecodePnwOptions(r, &options.store));
  {
    uint64_t interval = 0;
    uint64_t max_buckets = 0;
    PNW_RETURN_IF_ERROR(r.GetBool(&options.background_migration));
    PNW_RETURN_IF_ERROR(r.GetU64(&interval));
    PNW_RETURN_IF_ERROR(r.GetU64(&max_buckets));
    options.migration_interval_ms = interval;
    options.migration_max_buckets = max_buckets;
  }
  if (num_shards == 0 || (num_shards & (num_shards - 1)) != 0 ||
      num_shards > (size_t{1} << 20)) {
    return Status::Corruption("sharded manifest shard count out of range");
  }
  options.num_shards = num_shards;

  std::unique_ptr<ShardedPnwStore> store(new ShardedPnwStore(options));
  store->checkpoint_epoch_ = epoch;
  store->shards_.resize(num_shards);
  const std::string epoch_dir = dir + "/" + EpochDirName(epoch);
  std::vector<Status> statuses(num_shards);
  {
    ThreadPool pool(CheckpointThreads(num_shards));
    for (size_t i = 0; i < num_shards; ++i) {
      pool.Submit([&store, &epoch_dir, &statuses, &recovery, i] {
        auto shard =
            PnwStore::Open(epoch_dir + "/" + ShardSnapshotName(i), recovery);
        if (!shard.ok()) {
          statuses[i] = shard.status();
          return;
        }
        store->shards_[i] = std::move(shard.value());
      });
    }
    pool.Wait();
  }
  for (const Status& s : statuses) {
    PNW_RETURN_IF_ERROR(s);
  }
  if (options.background_migration) {
    PNW_RETURN_IF_ERROR(store->StartBackgroundMigration());
  }
  return store;
}

Result<size_t> ShardedPnwStore::MigrateOnce(size_t max_buckets_per_shard) {
  std::vector<Status> statuses(shards_.size());
  std::vector<size_t> moved(shards_.size(), 0);
  {
    ThreadPool pool(CheckpointThreads(shards_.size()));
    for (size_t i = 0; i < shards_.size(); ++i) {
      pool.Submit([this, &statuses, &moved, max_buckets_per_shard, i] {
        // Exclusive, like any writer: migration mutates the shard's index,
        // pool, flags, and device, so readers drain first and checkpoints
        // never observe a half-moved bucket.
        PnwStore& shard = *shards_[i];
        util::WriterLock lock(shard.mu());
        auto migrated = shard.MigrateHotBuckets(max_buckets_per_shard);
        if (migrated.ok()) {
          moved[i] = migrated.value();
        } else {
          statuses[i] = migrated.status();
        }
      });
    }
    pool.Wait();
  }
  size_t total = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    PNW_RETURN_IF_ERROR(statuses[i]);
    total += moved[i];
  }
  return total;
}

Status ShardedPnwStore::StartBackgroundMigration() {
  if (!options_.store.store_keys_in_data_zone) {
    return Status::FailedPrecondition(
        "background migration requires store_keys_in_data_zone");
  }
  // Lifecycle lock first: unsynchronized, two concurrent Starts (or a
  // Start racing the destructor's Stop) would both see a non-joinable
  // pacer, then assign over a joinable std::thread -- std::terminate --
  // while racing on migration_stop_. The flag itself still needs
  // migration_mu_, the lock the pacer's wait loop holds.
  util::MutexLock lifecycle(migration_lifecycle_mu_);
  if (migration_pacer_.joinable()) {
    return Status::OK();  // already running
  }
  {
    util::MutexLock lock(migration_mu_);
    migration_stop_ = false;
  }
  migrator_pool_ =
      std::make_unique<ThreadPool>(CheckpointThreads(shards_.size()));
  // The pacer borrows the pool by raw pointer instead of re-reading the
  // lifecycle-guarded member: Stop joins the pacer before resetting the
  // pool, so the borrow outlives every use.
  ThreadPool* pool = migrator_pool_.get();
  const auto interval = std::chrono::milliseconds(
      std::max<size_t>(1, options_.migration_interval_ms));
  migration_pacer_ =
      std::thread([this, interval, pool] { MigrationPacerLoop(interval, pool); });
  return Status::OK();
}

void ShardedPnwStore::MigrationPacerLoop(std::chrono::milliseconds interval,
                                         ThreadPool* pool) {
  util::UniqueLock lock(migration_mu_);
  for (;;) {
    // Sleep one interval, waking early only for the stop signal (spurious
    // wakeups re-wait on the same deadline).
    const auto deadline = std::chrono::steady_clock::now() + interval;
    while (!migration_stop_ &&
           migration_cv_.WaitUntil(lock, deadline) != std::cv_status::timeout) {
    }
    if (migration_stop_) {
      return;
    }
    // Run the pass outside the pacer mutex so Stop never waits on a full
    // pass's worth of shard locks just to deliver its signal.
    lock.Unlock();
    RunMigrationPass(pool);
    lock.Lock();
  }
}

void ShardedPnwStore::RunMigrationPass(ThreadPool* pool) {
  std::vector<Status> statuses(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    pool->Submit([this, &statuses, i] {
      PnwStore& shard = *shards_[i];
      util::WriterLock shard_lock(shard.mu());
      auto migrated = shard.MigrateHotBuckets(options_.migration_max_buckets);
      // A FailedPrecondition here only means the shard is not
      // bootstrapped yet (Open starts the pacer before the caller
      // loads data): a benign no-op sweep, not a failure.
      if (!migrated.ok() && !migrated.status().IsFailedPrecondition()) {
        statuses[i] = migrated.status();
      }
    });
  }
  pool->Wait();
  for (const Status& s : statuses) {
    if (!s.ok()) {
      background_migration_failures_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
}

void ShardedPnwStore::StopBackgroundMigration() {
  // Same lifecycle lock as Start: the join below must never race another
  // Start's thread assignment. The pacer never takes this lock, so holding
  // it across the join cannot deadlock.
  util::MutexLock lifecycle(migration_lifecycle_mu_);
  {
    util::MutexLock lock(migration_mu_);
    migration_stop_ = true;
  }
  migration_cv_.NotifyAll();
  if (migration_pacer_.joinable()) {
    migration_pacer_.join();
    migration_pacer_ = std::thread();
  }
  migrator_pool_.reset();
}

Status ShardedPnwStore::Bootstrap(
    std::span<const uint64_t> keys,
    std::span<const std::vector<uint8_t>> values) {
  if (keys.size() != values.size()) {
    return Status::InvalidArgument("keys/values size mismatch");
  }
  std::vector<std::vector<uint64_t>> shard_keys(shards_.size());
  std::vector<std::vector<std::vector<uint8_t>>> shard_values(shards_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const size_t s = ShardOf(keys[i]);
    shard_keys[s].push_back(keys[i]);
    shard_values[s].push_back(values[i]);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    PnwStore& shard = *shards_[s];
    util::WriterLock lock(shard.mu());
    PNW_RETURN_IF_ERROR(shard.Bootstrap(shard_keys[s], shard_values[s]));
  }
  return Status::OK();
}

Status ShardedPnwStore::Put(uint64_t key, std::span<const uint8_t> value) {
  PnwStore& shard = *shards_[ShardOf(key)];
  util::WriterLock lock(shard.mu());
  return shard.Put(key, value);
}

Result<std::vector<uint8_t>> ShardedPnwStore::Get(uint64_t key) {
  PnwStore& shard = *shards_[ShardOf(key)];
  // Fastest path: seqlock optimistic read, no lock acquired at all. Falls
  // through on a seqlock conflict, when optimistic reads are disabled, or
  // when the shard's index has no lock-free lookup (NVM path hashing).
  if (auto fast = shard.TryGetOptimistic(key)) {
    return std::move(*fast);
  }
  // Shared: readers of the same shard proceed in parallel (the PnwStore
  // read path is Peek + relaxed atomics, see its thread-safety contract).
  util::ReaderLock lock(shard.mu());
  return shard.Get(key);
}

template <typename Result, typename PerShardFn>
std::vector<Result> ShardedPnwStore::ScatterGatherBatch(
    std::span<const uint64_t> keys, PerShardFn&& per_shard) {
  // Group slot indices by owning shard. Per-shard results keep their
  // in-shard order, so re-walking the batch with one cursor per shard
  // reassembles slot order without placeholder results.
  std::vector<std::vector<size_t>> shard_slots(shards_.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    shard_slots[ShardOf(keys[i])].push_back(i);
  }
  std::vector<std::vector<Result>> shard_results(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shard_slots[s].empty()) {
      shard_results[s] = per_shard(s, shard_slots[s]);
    }
  }
  std::vector<Result> out;
  out.reserve(keys.size());
  std::vector<size_t> cursor(shards_.size(), 0);
  for (const uint64_t key : keys) {
    const size_t s = ShardOf(key);
    out.push_back(std::move(shard_results[s][cursor[s]++]));
  }
  return out;
}

std::vector<Status> ShardedPnwStore::MultiPut(
    std::span<const uint64_t> keys,
    std::span<const std::span<const uint8_t>> values) {
  if (keys.size() != values.size()) {
    return std::vector<Status>(
        std::max(keys.size(), values.size()),
        Status::InvalidArgument("keys/values size mismatch"));
  }
  if (keys.empty()) {
    return {};
  }
  return ScatterGatherBatch<Status>(
      keys, [this, keys, values](size_t s, const std::vector<size_t>& slots) {
        // Values travel as borrowed spans -- no payload copies on the way
        // to the owning shard.
        std::vector<uint64_t> shard_keys;
        std::vector<std::span<const uint8_t>> shard_values;
        shard_keys.reserve(slots.size());
        shard_values.reserve(slots.size());
        for (const size_t slot : slots) {
          shard_keys.push_back(keys[slot]);
          shard_values.push_back(values[slot]);
        }
        // One *exclusive*-lock acquisition per involved shard, however
        // many writes the batch routes to it; the shard-level MultiPut
        // then amortizes prediction and the op-log flush across the group.
        PnwStore& shard = *shards_[s];
        util::WriterLock lock(shard.mu());
        return shard.MultiPut(shard_keys, shard_values);
      });
}

std::vector<Status> ShardedPnwStore::MultiPut(
    std::span<const uint64_t> keys,
    std::span<const std::vector<uint8_t>> values) {
  std::vector<std::span<const uint8_t>> spans(values.begin(), values.end());
  return MultiPut(keys, spans);
}

std::vector<Result<std::vector<uint8_t>>> ShardedPnwStore::MultiGet(
    std::span<const uint64_t> keys) {
  if (keys.empty()) {
    return {};
  }
  return ScatterGatherBatch<Result<std::vector<uint8_t>>>(
      keys, [this, keys](size_t s, const std::vector<size_t>& slots) {
        std::vector<uint64_t> shard_keys;
        shard_keys.reserve(slots.size());
        for (const size_t slot : slots) {
          shard_keys.push_back(keys[slot]);
        }
        // Optimistic first for every key, lock-free; then AT MOST one
        // *shared*-lock acquisition per involved shard for the keys whose
        // optimistic attempt fell through.
        PnwStore& shard = *shards_[s];
        std::vector<Result<std::vector<uint8_t>>> results;
        results.reserve(shard_keys.size());
        std::vector<size_t> fallback;
        for (size_t i = 0; i < shard_keys.size(); ++i) {
          if (auto fast = shard.TryGetOptimistic(shard_keys[i])) {
            results.push_back(std::move(*fast));
          } else {
            results.emplace_back(
                Status::Internal("unresolved optimistic slot"));
            fallback.push_back(i);
          }
        }
        if (!fallback.empty()) {
          util::ReaderLock lock(shard.mu());
          for (const size_t i : fallback) {
            results[i] = shard.Get(shard_keys[i]);
          }
        }
        return results;
      });
}

Status ShardedPnwStore::Delete(uint64_t key) {
  PnwStore& shard = *shards_[ShardOf(key)];
  util::WriterLock lock(shard.mu());
  return shard.Delete(key);
}

Status ShardedPnwStore::Update(uint64_t key, std::span<const uint8_t> value) {
  PnwStore& shard = *shards_[ShardOf(key)];
  util::WriterLock lock(shard.mu());
  return shard.Update(key, value);
}

Status ShardedPnwStore::TrainModel() {
  for (const auto& shard_ptr : shards_) {
    PnwStore& shard = *shard_ptr;
    util::WriterLock lock(shard.mu());
    PNW_RETURN_IF_ERROR(shard.TrainModel());
  }
  return Status::OK();
}

void ShardedPnwStore::ResetWearAndMetrics() {
  for (const auto& shard_ptr : shards_) {
    PnwStore& shard = *shard_ptr;
    util::WriterLock lock(shard.mu());
    shard.ResetWearAndMetrics();
  }
}

ShardedMetrics ShardedPnwStore::AggregatedMetrics() const {
  ShardedMetrics aggregated;
  aggregated.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    // Shared: aggregation is a pure read, so a metrics dashboard never
    // stalls the readers it is measuring (writers still exclude it). The
    // const ref makes the const (shared-capability) overloads of pool()
    // and device() apply below.
    PnwStore& mutable_store = *shards_[i];
    const PnwStore& store = mutable_store;
    util::ReaderLock lock(store.mu());
    // Re-snapshot the arena gauges before summing them: they describe
    // current allocator state, not accumulated history.
    mutable_store.RefreshArenaStats();
    const StoreMetrics& m = store.metrics();
    aggregated.totals.Accumulate(m);
    ShardSummary summary;
    summary.shard = i;
    summary.puts = m.puts;
    summary.gets = m.gets;
    summary.get_misses = m.get_misses;
    summary.deletes = m.deletes;
    summary.failed_ops = m.failed_ops;
    summary.used_buckets = store.size();
    summary.active_buckets = store.active_buckets();
    summary.free_addresses = store.pool().FreeCount();
    summary.max_bucket_writes = store.wear_tracker().MaxBucketWrites();
    summary.device_bits_written = store.device().counters().total_bits_written;
    summary.device_ns =
        m.put_device_ns + m.get_device_ns + m.delete_device_ns +
        m.predict_wall_ns + m.log_wall_ns + m.wear_device_ns;
    summary.get_device_ns = m.get_device_ns;
    summary.max_physical_writes = store.wear_tracker().MaxPhysicalWrites();
    summary.physical_bucket_writes = store.wear_tracker().TotalPhysicalWrites();
    summary.migrations = m.migrations;
    summary.gap_moves = m.gap_moves;
    summary.start_gap_rotations =
        store.remapper() != nullptr ? store.remapper()->rotations() : 0;
    aggregated.shards.push_back(summary);
  }
  return aggregated;
}

size_t ShardedPnwStore::size() const {
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    const PnwStore& shard = *shard_ptr;
    util::ReaderLock lock(shard.mu());
    total += shard.size();
  }
  return total;
}

}  // namespace pnw::core
