#ifndef PNW_CORE_MODEL_MANAGER_H_
#define PNW_CORE_MODEL_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "src/ml/feature_encoder.h"
#include "src/ml/kmeans.h"
#include "src/ml/pca.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace pnw::core {

/// Caller-owned scratch buffers for the prediction pipeline. Every
/// ValueModel inference entry point has an overload threading one of these
/// through, so a steady-state Predict performs zero heap allocations: the
/// buffers grow to the pipeline's working-set sizes on the first call and
/// are reused verbatim afterwards. A scratch is *not* thread-safe; give
/// each predicting thread (the PNW store's single writer, a background
/// labeler, ...) its own.
struct FeatureScratch {
  /// Bit-feature encoder output (encoder dims).
  std::vector<float> encoded;
  /// PCA projection output (num_components), when the pipeline uses PCA.
  std::vector<float> features;
  /// Folded-encoding lane accumulators (BitFeatureEncoder internals).
  std::vector<uint64_t> lanes;
  /// PCA centering buffer (input dims).
  std::vector<float> centered;
  /// RankClusters (score, cluster) pairs and the resulting order.
  std::vector<std::pair<float, size_t>> rank_scores;
  std::vector<size_t> ranked;
};

/// A trained prediction pipeline: bit-feature encoding, optional PCA
/// projection, and a K-means model. Immutable once built, so the store can
/// share it between the serving path and a background trainer via
/// shared_ptr swap (the paper's "switch to the new model ... while the
/// system is running").
class ValueModel {
 public:
  ValueModel(ml::BitFeatureEncoder encoder, std::optional<ml::PcaModel> pca,
             ml::KMeansModel kmeans)
      : encoder_(std::move(encoder)),
        pca_(std::move(pca)),
        kmeans_(std::move(kmeans)) {}

  /// Number of clusters the underlying K-means model predicts into.
  size_t k() const { return kmeans_.k(); }

  /// Cluster label for a raw value ("E = model.predict(D)", Algorithm 2).
  size_t Predict(std::span<const uint8_t> value) const;

  /// Allocation-free Predict: all pipeline temporaries live in `scratch`
  /// and are reused across calls. This is the PUT hot path.
  size_t Predict(std::span<const uint8_t> value, FeatureScratch& scratch) const;

  /// Clusters ordered nearest-first for the pool's fallback path.
  std::vector<size_t> RankClusters(std::span<const uint8_t> value) const;

  /// Allocation-free ranking: the order lands in (and is returned as a
  /// reference to) `scratch.ranked`, valid until the scratch's next use.
  const std::vector<size_t>& RankClusters(std::span<const uint8_t> value,
                                          FeatureScratch& scratch) const;

  /// Batched prediction through the same scratch-backed encoder path: one
  /// label per value into `labels` (resized; capacity reused). The batched
  /// write path predicts a whole MultiPut with one call.
  void PredictBatch(std::span<const std::span<const uint8_t>> values,
                    FeatureScratch& scratch,
                    std::vector<size_t>& labels) const;

  const ml::KMeansModel& kmeans() const { return kmeans_; }
  bool uses_pca() const { return pca_.has_value(); }
  /// Trained pipeline pieces, exposed so the persist layer can serialize a
  /// model and rebuild it bit-identically on recovery (no retraining).
  const ml::BitFeatureEncoder& encoder() const { return encoder_; }
  const std::optional<ml::PcaModel>& pca() const { return pca_; }

 private:
  /// Encode + (optionally) project through `scratch`; the returned span
  /// aliases scratch storage and stays valid until its next use.
  std::span<const float> Featurize(std::span<const uint8_t> value,
                                   FeatureScratch& scratch) const;

  ml::BitFeatureEncoder encoder_;
  std::optional<ml::PcaModel> pca_;
  ml::KMeansModel kmeans_;
};

/// Training configuration for the manager (a distilled view of PnwOptions).
struct ModelTrainingConfig {
  size_t value_bytes = 32;
  size_t num_clusters = 8;
  size_t max_features = 512;
  size_t pca_components = 0;  // 0 = PCA disabled
  size_t max_iterations = 30;
  size_t train_threads = 1;
  /// Byte stride for folded feature encoding; 0 = auto (scan <= 2 KiB per
  /// value, bounding prediction latency for page-sized values).
  size_t encode_byte_stride = 0;
  /// If nonzero, train with mini-batch K-means of this batch size (cheaper
  /// background retraining; see ml::KMeansOptions::mini_batch_size).
  size_t mini_batch_size = 0;
  uint64_t seed = 42;
};

/// Owns model (re)training. Synchronous training returns a fresh model;
/// background training runs on a private thread and the result is collected
/// by the store on a later operation ("we can hide the re-training latency
/// and the system works without disruptions").
class ModelManager {
 public:
  explicit ModelManager(const ModelTrainingConfig& config);
  ~ModelManager();

  ModelManager(const ModelManager&) = delete;
  ModelManager& operator=(const ModelManager&) = delete;

  /// Train a model on `samples` (raw values, each config.value_bytes long).
  Result<std::shared_ptr<const ValueModel>> Train(
      const std::vector<std::vector<uint8_t>>& samples);

  /// Kick off asynchronous training on `samples`. No-op if a training run
  /// is already in flight. Returns false in that case.
  bool StartBackgroundTrain(std::vector<std::vector<uint8_t>> samples);

  /// True while a background run is in flight.
  bool background_training_in_progress() const {
    return training_in_flight_.load(std::memory_order_acquire);
  }

  /// Collect the finished background model, if any (nullptr otherwise).
  std::shared_ptr<const ValueModel> TakeTrainedModel() PNW_EXCLUDES(mu_);

  /// Status of the most recently *completed* background run. OK until the
  /// first background run finishes; a failed run leaves its error here (and
  /// bumps background_failures()) instead of vanishing inside the worker --
  /// the store would otherwise keep serving a stale model with no signal.
  Status last_background_status() const PNW_EXCLUDES(mu_);

  /// Background runs that completed with a non-OK status.
  uint64_t background_failures() const {
    return background_failures_.load(std::memory_order_acquire);
  }

  /// Wall-clock seconds of the most recent completed training run
  /// (Fig. 11's y-axis).
  double last_training_seconds() const { return last_training_seconds_; }

  /// The training configuration every run of this manager uses.
  const ModelTrainingConfig& config() const { return config_; }

 private:
  std::shared_ptr<const ValueModel> TrainInternal(
      const std::vector<std::vector<uint8_t>>& samples, Status* status);
  void JoinWorker();

  ModelTrainingConfig config_;
  std::thread worker_;
  std::atomic<bool> training_in_flight_{false};
  mutable util::Mutex mu_;
  std::shared_ptr<const ValueModel> ready_model_ PNW_GUARDED_BY(mu_);
  Status last_background_status_ PNW_GUARDED_BY(mu_);
  std::atomic<uint64_t> background_failures_{0};
  std::atomic<double> last_training_seconds_{0.0};
};

}  // namespace pnw::core

#endif  // PNW_CORE_MODEL_MANAGER_H_
