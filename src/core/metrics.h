#ifndef PNW_CORE_METRICS_H_
#define PNW_CORE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <type_traits>

namespace pnw::core {

/// Copyable relaxed-atomic counter for StoreMetrics' read-side slots.
///
/// GET/MultiGet run under a *shared* per-shard lock (ShardedPnwStore), so
/// any number of reader threads may bump these counters concurrently;
/// relaxed atomics make that race-free without serializing the readers.
/// StoreMetrics must nevertheless stay a value type -- the checkpoint
/// codec, aggregation, and tests copy it freely -- so copying a counter
/// snapshots its current value instead of (illegally) copying the atomic.
template <typename T>
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(T value) : value_(value) {}  // NOLINT(runtime/explicit)
  RelaxedCounter(const RelaxedCounter& other) : value_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    value_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(T value) {
    value_.store(value, std::memory_order_relaxed);
    return *this;
  }

  /// Transparent read: counters behave as a plain T in arithmetic,
  /// comparisons, and streaming.
  operator T() const { return load(); }
  T load() const { return value_.load(std::memory_order_relaxed); }

  RelaxedCounter& operator+=(T delta) {
    if constexpr (std::is_integral_v<T>) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    } else {
      // fetch_add on atomic<double> is C++20 but not universally shipped;
      // a relaxed CAS loop is equivalent here (no ordering required).
      T current = value_.load(std::memory_order_relaxed);
      while (!value_.compare_exchange_weak(current, current + delta,
                                           std::memory_order_relaxed)) {
      }
    }
    return *this;
  }
  RelaxedCounter& operator++() { return *this += T{1}; }

 private:
  std::atomic<T> value_{};
};

template <typename T>
inline std::ostream& operator<<(std::ostream& os,
                                const RelaxedCounter<T>& counter) {
  return os << counter.load();
}

/// Per-store operation counters. Device-level wear (bits/words/lines) lives
/// in nvm::NvmCounters; this struct tracks what the *store* did and how the
/// simulated time breaks down, which the paper's latency figures need.
///
/// Thread-safety: the read-side slots (`gets`, `get_misses`,
/// `get_device_ns`) are relaxed atomics because GET/MultiGet run under a
/// shared lock; every other field is written only by mutating operations,
/// which hold the exclusive lock.
struct StoreMetrics {
  uint64_t puts = 0;
  /// GETs that returned a value. A GET that found nothing lands in
  /// `get_misses` instead, so `gets + get_misses` equals every read the
  /// store served -- the reconciliation ycsb_runner checks per mix.
  RelaxedCounter<uint64_t> gets;
  /// GETs that returned no value: index NotFound, or an index entry whose
  /// data-zone bucket held a different key (surfaced as Internal). Misses
  /// are an expected workload outcome, not an operation failure, so they
  /// are deliberately *not* folded into `failed_ops` (which the write path
  /// owns exclusively).
  RelaxedCounter<uint64_t> get_misses;
  /// Read-path split of `gets`: hits served by the seqlock optimistic path
  /// (no lock taken) vs hits served under the shared lock. The identity
  /// `gets == optimistic_gets + locked_gets` holds at all times -- every
  /// hit bumps exactly one of the two alongside `gets` (ycsb_runner
  /// reconciles this after each mix). Optimistic *misses* validate the
  /// seqlock too and land in `get_misses` like any other miss.
  RelaxedCounter<uint64_t> optimistic_gets;
  RelaxedCounter<uint64_t> locked_gets;
  /// Seqlock conflicts on the optimistic path: a validation failure or an
  /// index-traversal overflow, each of which retries or falls back to the
  /// locked path. Retries are not reads -- they never touch gets/misses --
  /// so this counter has no reconciliation identity with them; it is the
  /// contention gauge bench_fig20 reports.
  RelaxedCounter<uint64_t> optimistic_retries;
  uint64_t deletes = 0;
  uint64_t updates = 0;
  uint64_t failed_ops = 0;

  /// NVM cells updated by PUT traffic (payload + flag + index), and the
  /// payload bits those PUTs carried: the ratio gives the paper's
  /// "bit updates per 512 bits" metric.
  uint64_t put_bits_written = 0;
  uint64_t put_payload_bits = 0;
  uint64_t put_lines_written = 0;
  uint64_t put_words_written = 0;

  /// Simulated device time attributed to PUTs / GETs / DELETEs. GET time
  /// is charged on every exit that touched the device -- a key-mismatch
  /// miss has already paid for its bucket read.
  double put_device_ns = 0.0;
  RelaxedCounter<double> get_device_ns;
  double delete_device_ns = 0.0;
  /// Measured wall-clock time spent in model Predict() calls (the paper
  /// reports "the latency of prediction per item").
  double predict_wall_ns = 0.0;
  /// Measured wall-clock time spent appending operations to the attached
  /// op-log (zero while no log is attached). Together with
  /// predict_wall_ns and put_device_ns this completes the write-path cost
  /// split: predict vs simulated device vs durability capture.
  double log_wall_ns = 0.0;

  /// Placement attribution: PUTs placed by a trained model's prediction vs
  /// PUTs placed model-less (cluster 0, i.e. DCW behaviour). A store whose
  /// bootstrap model never trained shows up here instead of silently
  /// serving DCW while the operator reads PNW numbers.
  uint64_t predicted_placements = 0;
  uint64_t fallback_placements = 0;
  /// Latency-first in-place updates. These count as `puts` (they write a
  /// full value through the PUT accounting scopes) but are *not*
  /// placements -- the address pool was never consulted -- so they get
  /// their own bucket instead of polluting the predicted/fallback split.
  uint64_t inplace_updates = 0;

  /// The PUT-attribution invariant: every counted PUT was either placed by
  /// the model, placed model-less, or written in place. Tests assert this
  /// after mixed traffic; it fails if a path bumps `puts` without deciding
  /// its attribution (or vice versa).
  bool PlacementAttributionConsistent() const {
    return predicted_placements + fallback_placements + inplace_updates ==
           puts;
  }

  /// Pool behaviour.
  uint64_t pool_fallbacks = 0;   // predicted cluster empty, used next-nearest
  uint64_t retrains = 0;
  /// Background retraining runs that completed with an error (the stale
  /// model stays in service; see ModelManager::last_background_status()).
  uint64_t failed_retrains = 0;
  uint64_t extensions = 0;

  /// Endurance layer (Start-Gap + hot-bucket migration). Together with
  /// `puts` these reconcile against the device's physical view: every
  /// data-zone block write is a client PUT, a migration copy, or a gap
  /// move, so puts + migrations + gap_moves == total physical bucket
  /// writes (ycsb_runner --wear-report checks exactly this).
  uint64_t migrations = 0;  // hot buckets re-placed into colder addresses
  uint64_t gap_moves = 0;   // Start-Gap copies since the last reset
  /// Simulated device time of migration copies and gap moves -- the
  /// endurance layer's own cost, kept out of the client-op latency split.
  double wear_device_ns = 0.0;

  /// Arena-allocator gauges, summed over the store's arenas (the device's
  /// data array + the DRAM index's nodes and tables). These are *snapshots*
  /// refreshed by PnwStore::Metrics()/ShardedPnwStore aggregation, not
  /// monotonic counters, and they describe process RAM rather than store
  /// state -- so they are deliberately NOT serialized by the checkpoint
  /// codec. Accumulate() sums them so a sharded store reports fleet-wide
  /// footprint. Reconciliation: arena_live_bytes <= arena_high_water_bytes
  /// <= arena_slab_bytes, and arena_slab_bytes is a multiple of nothing in
  /// general (slabs may differ per arena) but is zero iff arena_slabs is.
  RelaxedCounter<uint64_t> arena_slabs;
  RelaxedCounter<uint64_t> arena_slab_bytes;
  RelaxedCounter<uint64_t> arena_live_bytes;
  RelaxedCounter<uint64_t> arena_high_water_bytes;

  /// Average bit updates per 512 payload bits written (paper Fig. 6 y-axis).
  double BitUpdatesPer512() const;
  /// Average end-to-end PUT latency in ns: prediction + simulated device
  /// time (paper Fig. 7/8).
  double AvgPutLatencyNs() const;
  /// Average written cache lines per PUT (paper Fig. 9 y-axis).
  double AvgLinesPerPut() const;
  /// Average prediction latency per PUT in ns.
  double AvgPredictNs() const;

  /// Fold another store's counters into this one (ShardedPnwStore sums its
  /// shards' metrics through this).
  void Accumulate(const StoreMetrics& other);

  /// One-line "key=value" rendering of every counter, for logs and CLIs.
  std::string ToString() const;
};

}  // namespace pnw::core

#endif  // PNW_CORE_METRICS_H_
