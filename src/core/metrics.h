#ifndef PNW_CORE_METRICS_H_
#define PNW_CORE_METRICS_H_

#include <cstdint>
#include <string>

namespace pnw::core {

/// Per-store operation counters. Device-level wear (bits/words/lines) lives
/// in nvm::NvmCounters; this struct tracks what the *store* did and how the
/// simulated time breaks down, which the paper's latency figures need.
struct StoreMetrics {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t updates = 0;
  uint64_t failed_ops = 0;

  /// NVM cells updated by PUT traffic (payload + flag + index), and the
  /// payload bits those PUTs carried: the ratio gives the paper's
  /// "bit updates per 512 bits" metric.
  uint64_t put_bits_written = 0;
  uint64_t put_payload_bits = 0;
  uint64_t put_lines_written = 0;
  uint64_t put_words_written = 0;

  /// Simulated device time attributed to PUTs / GETs / DELETEs.
  double put_device_ns = 0.0;
  double get_device_ns = 0.0;
  double delete_device_ns = 0.0;
  /// Measured wall-clock time spent in model Predict() calls (the paper
  /// reports "the latency of prediction per item").
  double predict_wall_ns = 0.0;

  /// Placement attribution: PUTs placed by a trained model's prediction vs
  /// PUTs placed model-less (cluster 0, i.e. DCW behaviour). A store whose
  /// bootstrap model never trained shows up here instead of silently
  /// serving DCW while the operator reads PNW numbers.
  uint64_t predicted_placements = 0;
  uint64_t fallback_placements = 0;
  /// Latency-first in-place updates. These count as `puts` (they write a
  /// full value through the PUT accounting scopes) but are *not*
  /// placements -- the address pool was never consulted -- so they get
  /// their own bucket instead of polluting the predicted/fallback split.
  uint64_t inplace_updates = 0;

  /// The PUT-attribution invariant: every counted PUT was either placed by
  /// the model, placed model-less, or written in place. Tests assert this
  /// after mixed traffic; it fails if a path bumps `puts` without deciding
  /// its attribution (or vice versa).
  bool PlacementAttributionConsistent() const {
    return predicted_placements + fallback_placements + inplace_updates ==
           puts;
  }

  /// Pool behaviour.
  uint64_t pool_fallbacks = 0;   // predicted cluster empty, used next-nearest
  uint64_t retrains = 0;
  /// Background retraining runs that completed with an error (the stale
  /// model stays in service; see ModelManager::last_background_status()).
  uint64_t failed_retrains = 0;
  uint64_t extensions = 0;

  /// Average bit updates per 512 payload bits written (paper Fig. 6 y-axis).
  double BitUpdatesPer512() const;
  /// Average end-to-end PUT latency in ns: prediction + simulated device
  /// time (paper Fig. 7/8).
  double AvgPutLatencyNs() const;
  /// Average written cache lines per PUT (paper Fig. 9 y-axis).
  double AvgLinesPerPut() const;
  /// Average prediction latency per PUT in ns.
  double AvgPredictNs() const;

  /// Fold another store's counters into this one (ShardedPnwStore sums its
  /// shards' metrics through this).
  void Accumulate(const StoreMetrics& other);

  /// One-line "key=value" rendering of every counter, for logs and CLIs.
  std::string ToString() const;
};

}  // namespace pnw::core

#endif  // PNW_CORE_METRICS_H_
