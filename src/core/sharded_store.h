#ifndef PNW_CORE_SHARDED_STORE_H_
#define PNW_CORE_SHARDED_STORE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/pnw_store.h"
#include "src/persist/recovery.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace pnw {
class ThreadPool;
}

namespace pnw::core {

/// Configuration of a ShardedPnwStore.
struct ShardedOptions {
  /// Template for every shard. With `split_buckets` (the default) the
  /// bucket counts below are divided across the shards; everything else
  /// (value size, clustering, update mode, ...) applies to each shard
  /// verbatim, so the paper's per-shard placement behaviour is exactly a
  /// PnwStore's.
  PnwOptions store;

  /// Number of independent shards. Must be a power of two (the router
  /// masks a mixed key hash).
  size_t num_shards = 4;

  /// Divide store.initial_buckets / store.capacity_buckets across the
  /// shards (ceiling division plus a ~4-sigma binomial headroom per shard,
  /// covering hash-routing imbalance) so total capacity tracks the
  /// unsharded configuration. Disable to give every shard the full bucket
  /// counts as written.
  bool split_buckets = true;

  /// Run the background hot-bucket migrator: a pacer thread wakes every
  /// `migration_interval_ms` and fans one migration pass per shard out on
  /// a util::ThreadPool; each pass takes that shard's *exclusive* lock
  /// (the same lock writers and checkpoints take, so migration never
  /// races either) and calls PnwStore::MigrateHotBuckets. Requires
  /// store.store_keys_in_data_zone.
  bool background_migration = false;
  size_t migration_interval_ms = 20;
  /// Victim budget of each per-shard pass (relocations are paced, not
  /// bursty: a pass moves at most this many buckets).
  size_t migration_max_buckets = 4;
};

/// One shard's health snapshot inside a ShardedMetrics report: enough to
/// see routing imbalance (ops and occupancy skew) and wear imbalance
/// (hottest bucket, device bits) across shards at a glance.
struct ShardSummary {
  size_t shard = 0;
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t get_misses = 0;
  uint64_t deletes = 0;
  uint64_t failed_ops = 0;
  size_t used_buckets = 0;
  size_t active_buckets = 0;
  size_t free_addresses = 0;
  /// Max K/V writes any single bucket of this shard received.
  uint32_t max_bucket_writes = 0;
  /// NVM cells this shard's device updated in total.
  uint64_t device_bits_written = 0;
  /// This shard's total busy time: simulated device time plus the
  /// measured wall time of prediction and op-log capture -- the full
  /// write-path cost split (predict + device + durability) lands here.
  double device_ns = 0.0;
  /// The read share of `device_ns`. Callers modeling parallel service
  /// split on this: reads hold shared locks (they spread over all reader
  /// threads), the `device_ns - get_device_ns` remainder is exclusive
  /// write/delete/predict time (it spreads over min(threads, shards)).
  double get_device_ns = 0.0;
  /// Endurance-layer view of the same shard: hottest *physical* bucket
  /// slot, total physical bucket writes (client + migration + gap moves),
  /// and how much endurance work produced them.
  uint32_t max_physical_writes = 0;
  uint64_t physical_bucket_writes = 0;
  uint64_t migrations = 0;
  uint64_t gap_moves = 0;
  uint64_t start_gap_rotations = 0;
};

/// Cross-shard aggregate: summed StoreMetrics plus per-shard summaries.
struct ShardedMetrics {
  StoreMetrics totals;
  std::vector<ShardSummary> shards;

  /// Routing-imbalance measure: max per-shard PUTs over the per-shard
  /// mean. 1.0 = perfectly balanced; >> 1 = one shard takes the heat.
  double PutImbalance() const;
  /// Hottest bucket across all shards (cross-shard wear ceiling).
  uint32_t MaxBucketWrites() const;
  /// Largest per-shard simulated busy time -- the makespan lower bound of
  /// a run where shards execute in parallel.
  double MaxShardDeviceNs() const;

  /// Summed totals plus the shard count and imbalance measures, one line.
  std::string ToString() const;
};

/// Concurrent, hash-sharded front-end over N independent PnwStore shards.
///
/// Scaling move beyond the paper (which evaluates single-writer): each
/// shard keeps its own K-means model, dynamic address pool, index, and
/// simulated device -- i.e. its own wear domain -- so the paper's placement
/// logic is untouched per shard. Keys are routed by a mixed 64-bit hash
/// masked to the shard count; each shard carries its own reader-writer
/// capability (PnwStore::mu(), a util::SharedMutex), so operations on
/// different shards proceed in parallel and there is no global lock
/// anywhere on the data path.
///
/// Lock discipline per shard, machine-checked by Clang Thread Safety
/// Analysis against PnwStore's PNW_REQUIRES/PNW_REQUIRES_SHARED contracts
/// (the read-mostly YCSB mixes the paper reports on are why reads must not
/// serialize):
///   - shared:    Get, MultiGet, AggregatedMetrics, size -- any number of
///                readers proceed concurrently, even on the *same* shard.
///   - exclusive: Put, Delete, Update, Bootstrap, TrainModel,
///                ResetWearAndMetrics, and both Checkpoint phases (the
///                snapshot is a consistent read of a quiesced shard).
/// The PnwStore read path holds up its end: under a shared lock it only
/// does const index lookups, device Peeks, and relaxed-atomic metrics
/// updates (StoreMetrics::gets/get_misses/get_device_ns).
///
/// Thread-safe: any number of threads may call Put/Get/MultiGet/Delete/
/// Update concurrently. Bootstrap/TrainModel/ResetWearAndMetrics also lock
/// per shard but are intended for single-threaded setup phases. The
/// unlocked `shard(i)` accessor is for tests/benches inspecting a quiesced
/// store.
class ShardedPnwStore {
 public:
  /// Bumped whenever the MANIFEST layout changes (shard snapshots carry
  /// their own version, PnwStore::kSnapshotVersion).
  ///   v2: background-migration options (enabled flag, interval, per-pass
  ///       victim budget) follow the encoded store options.
  static constexpr uint32_t kManifestVersion = 2;
  /// Checkpoint-directory file names: the manifest, and one snapshot (plus
  /// its `.oplog`) per shard, named by ShardSnapshotName().
  static constexpr const char* kManifestName = "MANIFEST";

  /// Validates options (power-of-two shard count, enough buckets to split)
  /// and opens every shard.
  static Result<std::unique_ptr<ShardedPnwStore>> Open(
      const ShardedOptions& options);

  /// Reopen a checkpoint directory written by Checkpoint(): reads the
  /// MANIFEST (its absence means "not a finished checkpoint" -- the
  /// manifest is written last), then recovers every shard snapshot in
  /// parallel on a util::ThreadPool, replaying each shard's own op-log per
  /// `recovery`. The recovered store has the same shard count, routing,
  /// per-shard models, pools, and wear domains as the checkpointed one.
  static Result<std::unique_ptr<ShardedPnwStore>> Open(
      const std::string& dir,
      const persist::RecoveryOptions& recovery = persist::RecoveryOptions{});

  /// Two-phase checkpoint into a fresh `dir/epoch-NNNNNN/` generation.
  /// Phase 1 snapshots every shard in parallel (one thread-pool task per
  /// shard, each locking only its shard) while the shards keep logging
  /// into the *committed* generation -- so an error or crash anywhere up
  /// to the commit leaves durability exactly as before the call. The
  /// commit point is the atomic write of `dir/MANIFEST`; phase 2 then
  /// switches every shard's op-log (`shard-NNNN.snap.oplog` inside the
  /// generation) to the new generation -- carrying over the records of
  /// operations that raced the shard's snapshot, so in the absence of a
  /// crash no acknowledged write is ever dropped -- and superseded or
  /// partial generations are garbage-collected. A crash mid-checkpoint
  /// therefore recovers the previous complete generation; a crash
  /// between the manifest commit and a shard's log switch can lose only
  /// the operations that shard acknowledged inside that window. The snapshot
  /// is crash-consistent *per shard*, not a global point in time (keys
  /// routed to different shards may be captured at slightly different
  /// moments). Call from one thread at a time.
  Status Checkpoint(const std::string& dir);

  /// File name of shard `i`'s snapshot inside a checkpoint generation.
  static std::string ShardSnapshotName(size_t i);

  /// Stops the background migrator (if running) before the shards die.
  ~ShardedPnwStore();
  ShardedPnwStore(const ShardedPnwStore&) = delete;
  ShardedPnwStore& operator=(const ShardedPnwStore&) = delete;

  /// Routes each warm-up item to its shard, then bootstraps every shard
  /// (training a per-shard model unless options.store.train_on_bootstrap
  /// is off). Items must fit each shard's initial buckets; the headroom
  /// applied by `split_buckets` makes hash-imbalance overflow improbable.
  Status Bootstrap(std::span<const uint64_t> keys,
                   std::span<const std::vector<uint8_t>> values);

  Status Put(uint64_t key, std::span<const uint8_t> value);
  Result<std::vector<uint8_t>> Get(uint64_t key);
  Status Delete(uint64_t key);
  Status Update(uint64_t key, std::span<const uint8_t> value);

  /// Batched write: one Status per (key, value) slot, in slot order
  /// (duplicates allowed; later slots observe earlier ones). Groups the
  /// slots by owning shard and takes each involved shard's *exclusive*
  /// lock exactly once, so a batch of B writes over S shards costs
  /// min(B, S) lock acquisitions instead of B; within a shard the group
  /// goes through PnwStore::MultiPut (batch-predicted labels, one group
  /// op-log append). Writes to different shards still serialize only
  /// against their own shard's readers/writers. An empty batch returns an
  /// empty vector without locking.
  std::vector<Status> MultiPut(std::span<const uint64_t> keys,
                               std::span<const std::span<const uint8_t>> values);
  /// Convenience overload for callers holding owned values.
  std::vector<Status> MultiPut(std::span<const uint64_t> keys,
                               std::span<const std::vector<uint8_t>> values);

  /// Batched read: one Result per key, in key order (duplicates allowed).
  /// Groups the keys by owning shard and acquires each involved shard's
  /// shared lock exactly once, so a batch of B keys over S shards costs
  /// min(B, S) lock acquisitions instead of B -- the cheap way to drive
  /// the read-mostly YCSB mixes. Per-slot statuses mirror Get's: NotFound
  /// for an absent key, Internal for an index entry whose bucket holds a
  /// different key (both count as get_misses). An empty batch returns an
  /// empty vector without locking.
  std::vector<Result<std::vector<uint8_t>>> MultiGet(
      std::span<const uint64_t> keys);

  /// One synchronous migration pass: fans MigrateHotBuckets(
  /// max_buckets_per_shard) out across the shards on a util::ThreadPool,
  /// each task under its shard's exclusive lock, and returns the total
  /// number of buckets relocated (or the first shard error). This is the
  /// same pass the background pacer runs on its interval; callers that
  /// want deterministic pacing (benchmarks, tests, the YCSB runner's
  /// --migrate-every) drive it directly instead of enabling the thread.
  Result<size_t> MigrateOnce(size_t max_buckets_per_shard);

  /// Start/stop the background migration pacer explicitly. Open() starts
  /// it automatically when options.background_migration is set; Stop is
  /// idempotent and is always called by the destructor before the shards
  /// are torn down.
  Status StartBackgroundMigration()
      PNW_EXCLUDES(migration_lifecycle_mu_, migration_mu_);
  void StopBackgroundMigration()
      PNW_EXCLUDES(migration_lifecycle_mu_, migration_mu_);

  /// Migration passes the background pacer observed failing (the pass's
  /// first error is counted; the pacer keeps running -- endurance work is
  /// best-effort and must never take the store down).
  uint64_t background_migration_failures() const {
    return background_migration_failures_.load(std::memory_order_relaxed);
  }

  /// Retrains every shard's model synchronously.
  Status TrainModel();

  /// Zeroes every shard's wear counters and operation metrics.
  void ResetWearAndMetrics();

  /// Sums per-shard StoreMetrics and collects per-shard wear summaries so
  /// cross-shard imbalance is visible, locking one shard at a time (the
  /// result is a consistent per-shard, not cross-shard, snapshot).
  ShardedMetrics AggregatedMetrics() const;

  /// Total K/V pairs across all shards.
  size_t size() const;

  /// Number of independent shards (a power of two).
  size_t num_shards() const { return shards_.size(); }
  /// The validated configuration this store was opened with.
  const ShardedOptions& options() const { return options_; }

  /// Which shard `key` routes to.
  size_t ShardOf(uint64_t key) const;

  /// Direct shard access. Single-threaded inspection phases (tests,
  /// benches) may call the shard's accessors without locking; annotated
  /// builds still require naming the shard's capability (PnwStore::mu())
  /// through a ReaderLock/WriterLock guard.
  PnwStore& shard(size_t i) { return *shards_[i]; }

 private:
  explicit ShardedPnwStore(const ShardedOptions& options);

  /// Body of the background pacer thread: sleep `interval`, fan one
  /// migration pass per shard out on `pool`, repeat until
  /// StopBackgroundMigration raises migration_stop_. A named method (not
  /// a lambda) so its lock contract is statable: the pacer owns no lock
  /// while a pass runs, which is what lets Stop deliver its signal without
  /// waiting out a full pass.
  void MigrationPacerLoop(std::chrono::milliseconds interval, ThreadPool* pool)
      PNW_EXCLUDES(migration_mu_);

  /// One fanned-out migration pass over all shards (each task takes its
  /// shard's exclusive capability); pass failures land in
  /// background_migration_failures_.
  void RunMigrationPass(ThreadPool* pool);

  /// Shared scatter/gather scaffolding of the batched entry points
  /// (MultiGet/MultiPut): group batch slots by owning shard, invoke
  /// `per_shard(shard, slot_indices)` once per involved shard -- the
  /// callable takes the lock its operation requires and returns that
  /// shard's results in slot_indices order -- then reassemble per-slot
  /// results in slot order. Defined in the .cc (only used there).
  template <typename Result, typename PerShardFn>
  std::vector<Result> ScatterGatherBatch(std::span<const uint64_t> keys,
                                         PerShardFn&& per_shard);

  ShardedOptions options_;
  /// Each shard owns its reader-writer capability (PnwStore::mu()); entry
  /// points name it through a local `PnwStore& shard` reference and an RAII
  /// guard, which is how the analysis ties each acquisition to the
  /// contracts it discharges. The vector itself is immutable after Open.
  std::vector<std::unique_ptr<PnwStore>> shards_;
  /// Monotonic checkpoint generation; each Checkpoint() writes into
  /// dir/epoch-<n>/ and commits it via the manifest (restored on Open).
  /// Guarded by Checkpoint's "call from one thread at a time" contract.
  uint64_t checkpoint_epoch_ = 0;

  /// Background migrator: `migration_pacer_` sleeps on the condition
  /// variable (so StopBackgroundMigration interrupts a wait instead of
  /// riding it out) and fans per-shard passes out on `migrator_pool_`.
  /// Two locks with disjoint jobs: `migration_lifecycle_mu_` serializes
  /// Start/Stop (thread spawn + join + pool teardown -- without it two
  /// Starts, or a Start racing ~ShardedPnwStore's Stop, assign over a
  /// joinable std::thread and terminate); `migration_mu_` covers only the
  /// stop flag the pacer sleeps on. The pacer never takes the lifecycle
  /// lock, so Stop can hold it across the join without deadlock.
  util::Mutex migration_lifecycle_mu_;
  std::unique_ptr<ThreadPool> migrator_pool_
      PNW_GUARDED_BY(migration_lifecycle_mu_);
  std::thread migration_pacer_ PNW_GUARDED_BY(migration_lifecycle_mu_);
  util::Mutex migration_mu_;
  util::CondVar migration_cv_;
  bool migration_stop_ PNW_GUARDED_BY(migration_mu_) = false;
  std::atomic<uint64_t> background_migration_failures_{0};
};

}  // namespace pnw::core

#endif  // PNW_CORE_SHARDED_STORE_H_
