#ifndef PNW_CORE_DYNAMIC_ADDRESS_POOL_H_
#define PNW_CORE_DYNAMIC_ADDRESS_POOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

namespace pnw::core {

/// The dynamic address pool (paper Section V-A2, Fig. 5): one free-list of
/// available data-zone addresses per K-means cluster. Addresses are removed
/// when allocated to a K/V pair and reinserted when the pair is deleted
/// ("we remove memory addresses out of the dynamic address pool when they
/// are allocated ... and reinsert them afterwards").
///
/// The paper leaves open what happens when the predicted cluster is empty;
/// this implementation falls back to the next-nearest cluster in the
/// caller-supplied centroid-distance order, so a PUT never fails while any
/// free address exists (the fallback count is surfaced so callers can use
/// it as a retraining signal alongside the load factor).
class DynamicAddressPool {
 public:
  explicit DynamicAddressPool(size_t num_clusters);

  /// Number of per-cluster free-lists (fixed at construction).
  size_t num_clusters() const { return free_lists_.size(); }

  /// Add a free address under `cluster`. Pre-condition:
  /// cluster < num_clusters().
  void Insert(size_t cluster, uint64_t addr);

  /// Pop a free address from exactly `cluster`; nullopt if that cluster's
  /// free-list is empty.
  std::optional<uint64_t> Acquire(size_t cluster);

  /// Pop from the first non-empty cluster in `ranked_clusters` (typically
  /// KMeansModel::RankClusters output: nearest centroid first). Sets
  /// `*used_fallback` if the address did not come from the first entry.
  std::optional<uint64_t> AcquireRanked(std::span<const size_t> ranked_clusters,
                                        bool* used_fallback);

  /// Cold-placement acquire for the hot-bucket migrator: walk
  /// `ranked_clusters` in order and take, from the first cluster holding
  /// any address with `wear_of(addr) < max_wear`, the address with the
  /// smallest wear (ties broken toward the front of the list, i.e. the
  /// least recently freed). Returns nullopt -- with the pool untouched --
  /// when no free address anywhere is colder than `max_wear`, so a
  /// migration that would not improve wear has no side effects. Sets
  /// `*used_fallback` when the address did not come from the first entry.
  /// Removal swaps with the back, so it stays O(1) after the scan (the
  /// resulting order change is deterministic, which checkpoint replay
  /// relies on).
  std::optional<uint64_t> AcquireRankedMinWear(
      std::span<const size_t> ranked_clusters,
      const std::function<uint32_t(uint64_t)>& wear_of, uint32_t max_wear,
      bool* used_fallback);

  /// Total free addresses across all clusters.
  size_t FreeCount() const { return total_free_; }
  /// Free addresses in one cluster.
  size_t FreeCount(size_t cluster) const { return free_lists_[cluster].size(); }
  /// One cluster's free-list, in pop order. Exposed so a checkpoint can
  /// serialize the exact pool state (labels *and* ordering) and recovery
  /// can restore it without re-predicting every free address.
  const std::vector<uint64_t>& FreeList(size_t cluster) const {
    return free_lists_[cluster];
  }

  /// Drop every address (used when a new model re-labels the free space).
  void Clear();

  /// Snapshot of all free addresses (used for re-labeling on model swap).
  std::vector<uint64_t> Drain();

 private:
  std::vector<std::vector<uint64_t>> free_lists_;
  size_t total_free_ = 0;
};

}  // namespace pnw::core

#endif  // PNW_CORE_DYNAMIC_ADDRESS_POOL_H_
