#include "src/core/model_manager.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace pnw::core {

std::span<const float> ValueModel::Featurize(std::span<const uint8_t> value,
                                             FeatureScratch& scratch) const {
  scratch.encoded.resize(encoder_.dims());
  encoder_.Encode(value, scratch.encoded, scratch.lanes);
  if (!pca_.has_value()) {
    return scratch.encoded;
  }
  scratch.features.resize(pca_->num_components());
  pca_->Transform(scratch.encoded, scratch.features, scratch.centered);
  return scratch.features;
}

size_t ValueModel::Predict(std::span<const uint8_t> value) const {
  FeatureScratch scratch;
  return Predict(value, scratch);
}

size_t ValueModel::Predict(std::span<const uint8_t> value,
                           FeatureScratch& scratch) const {
  return kmeans_.Predict(Featurize(value, scratch));
}

std::vector<size_t> ValueModel::RankClusters(
    std::span<const uint8_t> value) const {
  FeatureScratch scratch;
  return RankClusters(value, scratch);
}

const std::vector<size_t>& ValueModel::RankClusters(
    std::span<const uint8_t> value, FeatureScratch& scratch) const {
  kmeans_.RankClusters(Featurize(value, scratch), scratch.rank_scores,
                       scratch.ranked);
  return scratch.ranked;
}

void ValueModel::PredictBatch(std::span<const std::span<const uint8_t>> values,
                              FeatureScratch& scratch,
                              std::vector<size_t>& labels) const {
  labels.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    labels[i] = Predict(values[i], scratch);
  }
}

ModelManager::ModelManager(const ModelTrainingConfig& config)
    : config_(config) {}

ModelManager::~ModelManager() { JoinWorker(); }

void ModelManager::JoinWorker() {
  if (worker_.joinable()) {
    worker_.join();
  }
}

std::shared_ptr<const ValueModel> ModelManager::TrainInternal(
    const std::vector<std::vector<uint8_t>>& samples, Status* status) {
  // The encoder zero-pads short samples and truncates long ones, so a size
  // mismatch would not crash -- it would silently train the model on data
  // that looks nothing like what the store serves. Treat it as a caller
  // bug instead.
  for (const auto& sample : samples) {
    if (sample.size() != config_.value_bytes) {
      *status = Status::InvalidArgument(
          "training sample size does not match value_bytes");
      return nullptr;
    }
  }
  const auto start = std::chrono::steady_clock::now();

  const size_t stride =
      config_.encode_byte_stride != 0
          ? config_.encode_byte_stride
          : std::max<size_t>(1, config_.value_bytes / 2048);
  ml::BitFeatureEncoder encoder(config_.value_bytes, config_.max_features,
                                stride);
  ml::Matrix encoded = encoder.EncodeBatch(samples);

  std::optional<ml::PcaModel> pca;
  const ml::Matrix* train_data = &encoded;
  ml::Matrix projected;
  if (config_.pca_components > 0 &&
      config_.pca_components < encoder.dims()) {
    ml::PcaOptions pca_options;
    pca_options.num_components = config_.pca_components;
    pca_options.seed = config_.seed;
    auto pca_result = ml::PcaTrainer(pca_options).Fit(encoded);
    if (!pca_result.ok()) {
      *status = pca_result.status();
      return nullptr;
    }
    pca = std::move(pca_result.value());
    projected = pca->TransformBatch(encoded);
    train_data = &projected;
  }

  ml::KMeansOptions kmeans_options;
  kmeans_options.k = config_.num_clusters;
  kmeans_options.max_iterations = config_.max_iterations;
  kmeans_options.seed = config_.seed;
  kmeans_options.num_threads = config_.train_threads;
  kmeans_options.mini_batch_size = config_.mini_batch_size;
  auto kmeans_result = ml::KMeansTrainer(kmeans_options).Fit(*train_data);
  if (!kmeans_result.ok()) {
    *status = kmeans_result.status();
    return nullptr;
  }

  const auto end = std::chrono::steady_clock::now();
  last_training_seconds_.store(
      std::chrono::duration<double>(end - start).count(),
      std::memory_order_release);
  *status = Status::OK();
  return std::make_shared<const ValueModel>(std::move(encoder), std::move(pca),
                                            std::move(kmeans_result.value()));
}

Result<std::shared_ptr<const ValueModel>> ModelManager::Train(
    const std::vector<std::vector<uint8_t>>& samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("model training requires samples");
  }
  Status status;
  auto model = TrainInternal(samples, &status);
  if (!status.ok()) {
    return status;
  }
  return Result<std::shared_ptr<const ValueModel>>(std::move(model));
}

bool ModelManager::StartBackgroundTrain(
    std::vector<std::vector<uint8_t>> samples) {
  if (samples.empty()) {
    return false;
  }
  bool expected = false;
  if (!training_in_flight_.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return false;  // a run is already in flight
  }
  JoinWorker();  // reap a previously finished thread
  worker_ = std::thread([this, samples = std::move(samples)]() mutable {
    Status status;
    auto model = TrainInternal(samples, &status);
    {
      util::MutexLock lock(mu_);
      last_background_status_ = status;
      if (status.ok()) {
        ready_model_ = std::move(model);
      }
    }
    if (!status.ok()) {
      background_failures_.fetch_add(1, std::memory_order_acq_rel);
    }
    training_in_flight_.store(false, std::memory_order_release);
  });
  return true;
}

Status ModelManager::last_background_status() const {
  util::MutexLock lock(mu_);
  return last_background_status_;
}

std::shared_ptr<const ValueModel> ModelManager::TakeTrainedModel() {
  util::MutexLock lock(mu_);
  return std::exchange(ready_model_, nullptr);
}

}  // namespace pnw::core
