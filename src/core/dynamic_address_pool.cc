#include "src/core/dynamic_address_pool.h"

namespace pnw::core {

DynamicAddressPool::DynamicAddressPool(size_t num_clusters)
    : free_lists_(num_clusters) {}

void DynamicAddressPool::Insert(size_t cluster, uint64_t addr) {
  free_lists_[cluster].push_back(addr);
  ++total_free_;
}

std::optional<uint64_t> DynamicAddressPool::Acquire(size_t cluster) {
  auto& list = free_lists_[cluster];
  if (list.empty()) {
    return std::nullopt;
  }
  const uint64_t addr = list.back();
  list.pop_back();
  --total_free_;
  return addr;
}

std::optional<uint64_t> DynamicAddressPool::AcquireRanked(
    std::span<const size_t> ranked_clusters, bool* used_fallback) {
  if (used_fallback != nullptr) {
    *used_fallback = false;
  }
  for (size_t i = 0; i < ranked_clusters.size(); ++i) {
    auto addr = Acquire(ranked_clusters[i]);
    if (addr.has_value()) {
      if (used_fallback != nullptr && i > 0) {
        *used_fallback = true;
      }
      return addr;
    }
  }
  return std::nullopt;
}

void DynamicAddressPool::Clear() {
  for (auto& list : free_lists_) {
    list.clear();
  }
  total_free_ = 0;
}

std::vector<uint64_t> DynamicAddressPool::Drain() {
  std::vector<uint64_t> all;
  all.reserve(total_free_);
  for (auto& list : free_lists_) {
    all.insert(all.end(), list.begin(), list.end());
    list.clear();
  }
  total_free_ = 0;
  return all;
}

}  // namespace pnw::core
