#include "src/core/dynamic_address_pool.h"

namespace pnw::core {

DynamicAddressPool::DynamicAddressPool(size_t num_clusters)
    : free_lists_(num_clusters) {}

void DynamicAddressPool::Insert(size_t cluster, uint64_t addr) {
  free_lists_[cluster].push_back(addr);
  ++total_free_;
}

std::optional<uint64_t> DynamicAddressPool::Acquire(size_t cluster) {
  auto& list = free_lists_[cluster];
  if (list.empty()) {
    return std::nullopt;
  }
  const uint64_t addr = list.back();
  list.pop_back();
  --total_free_;
  return addr;
}

std::optional<uint64_t> DynamicAddressPool::AcquireRanked(
    std::span<const size_t> ranked_clusters, bool* used_fallback) {
  if (used_fallback != nullptr) {
    *used_fallback = false;
  }
  for (size_t i = 0; i < ranked_clusters.size(); ++i) {
    auto addr = Acquire(ranked_clusters[i]);
    if (addr.has_value()) {
      if (used_fallback != nullptr && i > 0) {
        *used_fallback = true;
      }
      return addr;
    }
  }
  return std::nullopt;
}

std::optional<uint64_t> DynamicAddressPool::AcquireRankedMinWear(
    std::span<const size_t> ranked_clusters,
    const std::function<uint32_t(uint64_t)>& wear_of, uint32_t max_wear,
    bool* used_fallback) {
  if (used_fallback != nullptr) {
    *used_fallback = false;
  }
  for (size_t i = 0; i < ranked_clusters.size(); ++i) {
    auto& list = free_lists_[ranked_clusters[i]];
    size_t best = list.size();
    uint32_t best_wear = max_wear;
    for (size_t j = 0; j < list.size(); ++j) {
      const uint32_t wear = wear_of(list[j]);
      if (wear < best_wear) {
        best = j;
        best_wear = wear;
      }
    }
    if (best == list.size()) {
      continue;  // nothing in this cluster is colder than max_wear
    }
    const uint64_t addr = list[best];
    list[best] = list.back();
    list.pop_back();
    --total_free_;
    if (used_fallback != nullptr && i > 0) {
      *used_fallback = true;
    }
    return addr;
  }
  return std::nullopt;
}

void DynamicAddressPool::Clear() {
  for (auto& list : free_lists_) {
    list.clear();
  }
  total_free_ = 0;
}

std::vector<uint64_t> DynamicAddressPool::Drain() {
  std::vector<uint64_t> all;
  all.reserve(total_free_);
  for (auto& list : free_lists_) {
    all.insert(all.end(), list.begin(), list.end());
    list.clear();
  }
  total_free_ = 0;
  return all;
}

}  // namespace pnw::core
