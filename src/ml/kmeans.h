#ifndef PNW_ML_KMEANS_H_
#define PNW_ML_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/ml/matrix.h"
#include "src/util/status.h"

namespace pnw::ml {

/// Training knobs for K-means.
struct KMeansOptions {
  /// Number of clusters (the paper sweeps K from 1 to 30).
  size_t k = 8;
  /// Lloyd iteration cap.
  size_t max_iterations = 50;
  /// Stop when the relative SSE improvement falls below this.
  double tolerance = 1e-4;
  /// PRNG seed for k-means++ initialization.
  uint64_t seed = 42;
  /// Worker threads for the assignment step (Fig. 11 compares 1 vs 4).
  size_t num_threads = 1;
  /// If nonzero, train with mini-batch K-means (Sculley, WWW'10) using
  /// batches of this size instead of full-batch Lloyd. Trades a little
  /// clustering quality for much cheaper (re)training -- attractive for
  /// PNW's background retraining, whose cost the paper budgets via the
  /// load factor (Section VI-F / Fig. 11).
  size_t mini_batch_size = 0;
  /// Mini-batch iteration count (only used when mini_batch_size > 0).
  size_t mini_batch_iterations = 60;
};

/// A trained model: centroids plus prediction. Cheap to copy (the PNW model
/// manager swaps models atomically by replacing a shared_ptr to one).
class KMeansModel {
 public:
  KMeansModel() = default;
  KMeansModel(Matrix centroids, double sse)
      : centroids_(std::move(centroids)), sse_(sse) {
    ComputeCentroidNorms();
  }

  size_t k() const { return centroids_.rows(); }
  size_t dims() const { return centroids_.cols(); }
  bool trained() const { return centroids_.rows() > 0; }

  /// Index of the nearest centroid. Pre-condition: trained() and
  /// features.size() == dims().
  ///
  /// Hot-loop form: with per-centroid squared norms precomputed at
  /// construction, argmin_c ‖x − c‖² == argmin_c (‖c‖² − 2·x·c) -- the
  /// ‖x‖² term is constant across centroids -- so each candidate costs one
  /// fused multiply-add dot product, which auto-vectorizes, instead of a
  /// subtract-square-accumulate loop. No allocation.
  size_t Predict(std::span<const float> features) const;

  /// All cluster indices ordered by increasing distance to `features`.
  /// The PNW address pool uses this to fall back to the next-nearest
  /// cluster when the predicted one has no free address.
  std::vector<size_t> RankClusters(std::span<const float> features) const;

  /// Allocation-free ranking into caller-owned scratch: `by_score` and
  /// `out` are resized (capacity reused across calls). Same order as
  /// RankClusters(features).
  void RankClusters(std::span<const float> features,
                    std::vector<std::pair<float, size_t>>& by_score,
                    std::vector<size_t>& out) const;

  std::span<const float> Centroid(size_t c) const { return centroids_.Row(c); }
  const Matrix& centroids() const { return centroids_; }
  /// ‖c‖² per centroid, precomputed at construction (exposed for tests).
  const std::vector<float>& centroid_norms() const { return centroid_norms_; }

  /// Final sum of squared errors (inertia) on the training set; the elbow
  /// method (paper Eq. 1, Fig. 4) plots this against K.
  double sse() const { return sse_; }

 private:
  void ComputeCentroidNorms();

  Matrix centroids_;
  std::vector<float> centroid_norms_;
  double sse_ = 0.0;
};

/// Lloyd's algorithm with k-means++ seeding.
class KMeansTrainer {
 public:
  explicit KMeansTrainer(const KMeansOptions& options) : options_(options) {}

  /// Fit on `data` (rows = samples). Fails with InvalidArgument on an empty
  /// matrix or k == 0. If there are fewer samples than k, duplicate
  /// centroids are permitted (empty clusters collapse onto existing points).
  Result<KMeansModel> Fit(const Matrix& data) const;

  /// Per-sample labels under a trained model (convenience used by
  /// Algorithm 1's initialization: "labels = model.labels").
  static std::vector<size_t> Label(const KMeansModel& model,
                                   const Matrix& data);

 private:
  Result<KMeansModel> FitMiniBatch(const Matrix& data) const;

  KMeansOptions options_;
};

}  // namespace pnw::ml

#endif  // PNW_ML_KMEANS_H_
