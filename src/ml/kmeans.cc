#include "src/ml/kmeans.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/util/random.h"
#include "src/util/simd.h"
#include "src/util/thread_pool.h"

namespace pnw::ml {

namespace {

/// k-means++ seeding: first centroid uniform, subsequent ones sampled with
/// probability proportional to squared distance from the nearest chosen
/// centroid.
Matrix SeedCentroids(const Matrix& data, size_t k, Rng& rng) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  Matrix centroids(k, d);

  std::vector<float> min_dist(n, std::numeric_limits<float>::max());
  size_t first = rng.NextBelow(n);
  std::copy_n(data.Row(first).data(), d, centroids.Row(0).data());

  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const float dist = SquaredDistance(data.Row(i), centroids.Row(c - 1));
      min_dist[i] = std::min(min_dist[i], dist);
      total += min_dist[i];
    }
    size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.NextDouble() * total;
      for (size_t i = 0; i < n; ++i) {
        target -= min_dist[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      // All points coincide with centroids; any choice works.
      chosen = rng.NextBelow(n);
    }
    std::copy_n(data.Row(chosen).data(), d, centroids.Row(c).data());
  }
  return centroids;
}

}  // namespace

void KMeansModel::ComputeCentroidNorms() {
  centroid_norms_.resize(centroids_.rows());
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    const auto row = centroids_.Row(c);
    centroid_norms_[c] = DotProduct(row, row);
  }
}

size_t KMeansModel::Predict(std::span<const float> features) const {
  // ‖x − c‖² = ‖x‖² + ‖c‖² − 2·x·c; ‖x‖² is the same for every candidate,
  // so the argmin needs only the precomputed ‖c‖² and one dot per centroid.
  // The fused kernel walks the row-major centroid matrix directly (strict
  // less-than, first index wins -- identical tie behavior on every ISA).
  float best_score;
  return simd::Kernels().argmin_centroids(
      features.data(), centroids_.data().data(), centroid_norms_.data(),
      centroids_.rows(), centroids_.cols(), &best_score);
}

std::vector<size_t> KMeansModel::RankClusters(
    std::span<const float> features) const {
  std::vector<std::pair<float, size_t>> by_score;
  std::vector<size_t> order;
  RankClusters(features, by_score, order);
  return order;
}

void KMeansModel::RankClusters(
    std::span<const float> features,
    std::vector<std::pair<float, size_t>>& by_score,
    std::vector<size_t>& out) const {
  by_score.clear();
  by_score.reserve(centroids_.rows());
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    // Same ‖c‖² − 2·x·c score as Predict: shifted from the true squared
    // distance by the centroid-independent ‖x‖², so the ordering is equal.
    by_score.emplace_back(centroid_norms_[c] -
                              2.0f * DotProduct(features, centroids_.Row(c)),
                          c);
  }
  std::sort(by_score.begin(), by_score.end());
  out.resize(by_score.size());
  for (size_t i = 0; i < by_score.size(); ++i) {
    out[i] = by_score[i].second;
  }
}

Result<KMeansModel> KMeansTrainer::Fit(const Matrix& data) const {
  if (data.empty()) {
    return Status::InvalidArgument("k-means: empty training matrix");
  }
  if (options_.k == 0) {
    return Status::InvalidArgument("k-means: k must be positive");
  }
  if (options_.mini_batch_size > 0) {
    return FitMiniBatch(data);
  }
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = std::min(options_.k, n);

  Rng rng(options_.seed);
  Matrix centroids = SeedCentroids(data, k, rng);

  std::vector<size_t> assignment(n, 0);
  const size_t threads = std::max<size_t>(1, options_.num_threads);
  ThreadPool* pool = nullptr;
  ThreadPool owned_pool(threads > 1 ? threads : 1);
  if (threads > 1) {
    pool = &owned_pool;
  }

  double prev_sse = std::numeric_limits<double>::max();
  double sse = 0.0;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // Assignment step (parallelizable; dominates training time).
    std::vector<double> partial_sse(threads, 0.0);
    auto assign_range = [&](size_t begin, size_t end, size_t slot) {
      double local = 0.0;
      for (size_t i = begin; i < end; ++i) {
        size_t best = 0;
        float best_dist = std::numeric_limits<float>::max();
        const auto row = data.Row(i);
        for (size_t c = 0; c < k; ++c) {
          const float dist = SquaredDistance(row, centroids.Row(c));
          if (dist < best_dist) {
            best_dist = dist;
            best = c;
          }
        }
        assignment[i] = best;
        local += best_dist;
      }
      partial_sse[slot] += local;
    };
    if (pool != nullptr) {
      const size_t chunk = (n + threads - 1) / threads;
      std::atomic<size_t> slot{0};
      pool->ParallelFor(threads, [&](size_t begin, size_t end) {
        for (size_t w = begin; w < end; ++w) {
          const size_t lo = w * chunk;
          const size_t hi = std::min(n, lo + chunk);
          if (lo < hi) {
            assign_range(lo, hi, w);
          }
        }
      });
    } else {
      assign_range(0, n, 0);
    }
    sse = std::accumulate(partial_sse.begin(), partial_sse.end(), 0.0);

    // Update step.
    Matrix new_centroids(k, d);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = assignment[i];
      ++counts[c];
      auto dst = new_centroids.Row(c);
      const auto src = data.Row(i);
      for (size_t j = 0; j < d; ++j) {
        dst[j] += src[j];
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster on a random sample to keep k clusters
        // live (scikit-learn does the same on its "relocate" path).
        const size_t pick = rng.NextBelow(n);
        std::copy_n(data.Row(pick).data(), d, new_centroids.Row(c).data());
        continue;
      }
      auto row = new_centroids.Row(c);
      const float inv = 1.0f / static_cast<float>(counts[c]);
      for (size_t j = 0; j < d; ++j) {
        row[j] *= inv;
      }
    }
    centroids = std::move(new_centroids);

    if (prev_sse < std::numeric_limits<double>::max()) {
      const double denom = std::max(prev_sse, 1e-12);
      if ((prev_sse - sse) / denom < options_.tolerance) {
        break;
      }
    }
    prev_sse = sse;
  }

  return KMeansModel(std::move(centroids), sse);
}

Result<KMeansModel> KMeansTrainer::FitMiniBatch(const Matrix& data) const {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = std::min(options_.k, n);
  const size_t batch = std::min(options_.mini_batch_size, n);

  Rng rng(options_.seed);
  // Seed on a subsample to keep seeding cost proportional to the batch.
  const size_t seed_n = std::min(n, std::max<size_t>(batch, k * 4));
  Matrix seed_sample(seed_n, d);
  for (size_t i = 0; i < seed_n; ++i) {
    const size_t pick = rng.NextBelow(n);
    std::copy_n(data.Row(pick).data(), d, seed_sample.Row(i).data());
  }
  Matrix centroids = SeedCentroids(seed_sample, k, rng);

  // Sculley's update: per-centroid counts give a decaying learning rate.
  std::vector<uint64_t> counts(k, 1);
  for (size_t iter = 0; iter < options_.mini_batch_iterations; ++iter) {
    for (size_t b = 0; b < batch; ++b) {
      const auto sample = data.Row(rng.NextBelow(n));
      size_t best = 0;
      float best_dist = std::numeric_limits<float>::max();
      for (size_t c = 0; c < k; ++c) {
        const float dist = SquaredDistance(sample, centroids.Row(c));
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      ++counts[best];
      const float eta = 1.0f / static_cast<float>(counts[best]);
      auto center = centroids.Row(best);
      for (size_t j = 0; j < d; ++j) {
        center[j] += eta * (sample[j] - center[j]);
      }
    }
  }

  // Final SSE over the full data (one pass; comparable to Lloyd's output).
  double sse = 0.0;
  for (size_t i = 0; i < n; ++i) {
    float best_dist = std::numeric_limits<float>::max();
    const auto row = data.Row(i);
    for (size_t c = 0; c < k; ++c) {
      best_dist = std::min(best_dist, SquaredDistance(row, centroids.Row(c)));
    }
    sse += best_dist;
  }
  return KMeansModel(std::move(centroids), sse);
}

std::vector<size_t> KMeansTrainer::Label(const KMeansModel& model,
                                         const Matrix& data) {
  std::vector<size_t> labels(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    labels[i] = model.Predict(data.Row(i));
  }
  return labels;
}

}  // namespace pnw::ml
