#ifndef PNW_ML_ELBOW_H_
#define PNW_ML_ELBOW_H_

#include <cstddef>
#include <vector>

#include "src/ml/kmeans.h"
#include "src/ml/matrix.h"

namespace pnw::ml {

/// One point of the elbow curve (paper Fig. 4): the K-means SSE (Eq. 1)
/// after training with `k` clusters.
struct ElbowPoint {
  size_t k;
  double sse;
};

/// Train one model per candidate K and record the SSE curve.
std::vector<ElbowPoint> ComputeElbowCurve(const Matrix& data,
                                          const std::vector<size_t>& ks,
                                          const KMeansOptions& base_options);

/// Pick the "knee" of the curve: the point with maximum distance to the
/// chord connecting the first and last points (the standard geometric
/// kneedle-style criterion for the elbow method the paper cites).
/// Pre-condition: curve has at least 3 points sorted by k.
size_t FindElbowK(const std::vector<ElbowPoint>& curve);

}  // namespace pnw::ml

#endif  // PNW_ML_ELBOW_H_
