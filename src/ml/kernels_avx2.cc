// AVX2 kernels. This translation unit is compiled with -mavx2 on x86 (see
// src/CMakeLists.txt) and must therefore only be entered through the
// dispatch table: Avx2KernelTable() returns nullptr unless the *running*
// CPU reports AVX2, so no AVX2 instruction is ever reached on a host
// without it. On non-x86 targets the whole TU collapses to the nullptr
// stub.
//
// Bit-identity with the scalar reference (see src/util/simd.h): the float
// kernels use separate _mm256_mul_ps/_mm256_add_ps (never FMA -- one
// rounding per op, exactly like the scalar striped loop, which is compiled
// with -ffp-contract=off), vector lane l accumulates exactly the elements
// scalar stripe l accumulates, and both reduce through the shared
// ReduceDotLanes/ReduceCenteredLanes trees. The integer kernels are exact.

#include "src/util/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>
#include <cstring>
#include <limits>

namespace pnw::simd {

namespace {

float DotAvx2(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  const size_t main = n - n % 8;
  size_t i = 0;
  for (; i < main; i += 8) {
    const __m256 prod =
        _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc = _mm256_add_ps(acc, prod);
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (; i < n; ++i) {
    lanes[i - main] += a[i] * b[i];
  }
  return ReduceDotLanes(lanes);
}

size_t ArgminCentroidsAvx2(const float* x, const float* centroids,
                           const float* norms, size_t k, size_t dims,
                           float* best_score) {
  size_t best = 0;
  float best_val = std::numeric_limits<float>::max();
  for (size_t c = 0; c < k; ++c) {
    const float score =
        norms[c] - 2.0f * DotAvx2(x, centroids + c * dims, dims);
    if (score < best_val) {
      best_val = score;
      best = c;
    }
  }
  *best_score = best_val;
  return best;
}

double DotCenteredAvx2(const float* a, const float* b, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const size_t main = n - n % 4;
  size_t i = 0;
  for (; i < main; i += 4) {
    // Multiply in float (rounds exactly like the scalar reference), then
    // widen the 4 products to double and accumulate per stripe.
    const __m128 prod =
        _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i));
    acc = _mm256_add_pd(acc, _mm256_cvtps_pd(prod));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) {
    lanes[i - main] += static_cast<double>(a[i] * b[i]);
  }
  return ReduceCenteredLanes(lanes);
}

void EncodeAccumulateAvx2(const uint8_t* value, size_t count, size_t stride,
                          size_t num_slots, uint64_t* lanes) {
  // The vector form processes one full round (all slots) at a time, four
  // slots per gather+add. Narrow folds have no room for that; integer adds
  // are exact either way, so any split is bit-identical.
  const auto* spread =
      reinterpret_cast<const long long*>(kBitSpread.data());
  size_t t = 0;
  if (num_slots >= 4) {
    const size_t rounds = count / num_slots;
    const size_t slots4 = num_slots - num_slots % 4;
    for (size_t r = 0; r < rounds; ++r) {
      const size_t base = r * num_slots;
      size_t s = 0;
      for (; s < slots4; s += 4) {
        const size_t v = (base + s) * stride;
        const __m128i idx = _mm_set_epi32(
            value[v + 3 * stride], value[v + 2 * stride], value[v + stride],
            value[v]);
        const __m256i gathered = _mm256_i32gather_epi64(spread, idx, 8);
        __m256i* lane_ptr = reinterpret_cast<__m256i*>(lanes + s);
        _mm256_storeu_si256(
            lane_ptr,
            _mm256_add_epi64(_mm256_loadu_si256(lane_ptr), gathered));
      }
      for (; s < num_slots; ++s) {
        lanes[s] += kBitSpread[value[(base + s) * stride]];
      }
    }
    t = rounds * num_slots;
  }
  // Partial tail round (and the whole stream when num_slots < 4).
  size_t slot = t % num_slots;
  for (; t < count; ++t) {
    lanes[slot] += kBitSpread[value[t * stride]];
    if (++slot == num_slots) {
      slot = 0;
    }
  }
}

/// Horizontal sum of the 4 uint64 lanes of a __m256i.
uint64_t HorizontalSum64(__m256i v) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

/// Mula's nibble-LUT popcount of a 32-byte vector, accumulated per 64-bit
/// lane via SAD against zero.
__m256i PopcountLanes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

uint64_t PopcountBytesAvx2(const uint8_t* p, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    acc = _mm256_add_epi64(acc, PopcountLanes(v));
  }
  uint64_t total = HorizontalSum64(acc);
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    total += static_cast<uint64_t>(std::popcount(w));
  }
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(std::popcount(p[i]));
  }
  return total;
}

uint64_t HammingBytesAvx2(const uint8_t* a, const uint8_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, PopcountLanes(_mm256_xor_si256(va, vb)));
  }
  uint64_t total = HorizontalSum64(acc);
  for (; i + 8 <= n; i += 8) {
    uint64_t wa;
    uint64_t wb;
    std::memcpy(&wa, a + i, 8);
    std::memcpy(&wb, b + i, 8);
    total += static_cast<uint64_t>(std::popcount(wa ^ wb));
  }
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(
        std::popcount(static_cast<uint8_t>(a[i] ^ b[i])));
  }
  return total;
}

size_t NextDirtyWordAvx2(const uint8_t* resident, const uint8_t* incoming,
                         size_t from, size_t words) {
  size_t w = from;
  // Four words per compare: a clean 32-byte block is skipped with one
  // cmpeq+movemask; a dirty block falls through to the word probe below.
  for (; w + 4 <= words; w += 4) {
    const __m256i r = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(resident + w * 8));
    const __m256i i = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(incoming + w * 8));
    const __m256i eq = _mm256_cmpeq_epi8(r, i);
    const uint32_t mask = static_cast<uint32_t>(_mm256_movemask_epi8(eq));
    if (mask != 0xffffffffu) {
      // First dirty byte's word within the block.
      const uint32_t dirty = ~mask;
      return w + static_cast<size_t>(std::countr_zero(dirty)) / 8;
    }
  }
  for (; w < words; ++w) {
    uint64_t r;
    uint64_t i;
    std::memcpy(&r, resident + w * 8, 8);
    std::memcpy(&i, incoming + w * 8, 8);
    if (r != i) {
      return w;
    }
  }
  return words;
}

constexpr KernelTable kAvx2Table = {
    Isa::kAvx2,        DotAvx2,          ArgminCentroidsAvx2,
    DotCenteredAvx2,   EncodeAccumulateAvx2,
    PopcountBytesAvx2, HammingBytesAvx2, NextDirtyWordAvx2,
};

}  // namespace

const KernelTable* Avx2KernelTable() {
  // Compile-time AVX2 (this TU) is necessary but not sufficient: the
  // binary may run on an older CPU, so gate on the runtime check too.
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &kAvx2Table : nullptr;
}

}  // namespace pnw::simd

#else  // !defined(__AVX2__)

namespace pnw::simd {

const KernelTable* Avx2KernelTable() { return nullptr; }

}  // namespace pnw::simd

#endif  // defined(__AVX2__)
