// NEON kernels (aarch64 / ARMv7 with NEON). Entered only through the
// dispatch table; on targets without __ARM_NEON the TU collapses to the
// nullptr stub.
//
// Bit-identity with the scalar reference: separate vmulq_f32 + vaddq_f32
// (never vmlaq/vfmaq -- those fuse, rounding once where the reference
// rounds twice), stripes 0-3 and 4-7 live in two q registers so vector
// lane l accumulates exactly the elements scalar stripe l accumulates,
// and both sides reduce through the shared ReduceDotLanes /
// ReduceCenteredLanes trees. The integer kernels are exact.

#include "src/util/simd.h"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

#include <arm_neon.h>

#include <bit>
#include <cstring>
#include <limits>

namespace pnw::simd {

namespace {

float DotNeon(const float* a, const float* b, size_t n) {
  float32x4_t acc_lo = vdupq_n_f32(0.0f);  // stripes 0..3
  float32x4_t acc_hi = vdupq_n_f32(0.0f);  // stripes 4..7
  const size_t main = n - n % 8;
  size_t i = 0;
  for (; i < main; i += 8) {
    acc_lo = vaddq_f32(acc_lo, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    acc_hi = vaddq_f32(
        acc_hi, vmulq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
  }
  float lanes[8];
  vst1q_f32(lanes, acc_lo);
  vst1q_f32(lanes + 4, acc_hi);
  for (; i < n; ++i) {
    lanes[i - main] += a[i] * b[i];
  }
  return ReduceDotLanes(lanes);
}

size_t ArgminCentroidsNeon(const float* x, const float* centroids,
                           const float* norms, size_t k, size_t dims,
                           float* best_score) {
  size_t best = 0;
  float best_val = std::numeric_limits<float>::max();
  for (size_t c = 0; c < k; ++c) {
    const float score =
        norms[c] - 2.0f * DotNeon(x, centroids + c * dims, dims);
    if (score < best_val) {
      best_val = score;
      best = c;
    }
  }
  *best_score = best_val;
  return best;
}

double DotCenteredNeon(const float* a, const float* b, size_t n) {
#if defined(__aarch64__)
  float64x2_t acc_lo = vdupq_n_f64(0.0);  // stripes 0..1
  float64x2_t acc_hi = vdupq_n_f64(0.0);  // stripes 2..3
  const size_t main = n - n % 4;
  size_t i = 0;
  for (; i < main; i += 4) {
    // Multiply in float (rounds exactly like the scalar reference), then
    // widen to double and accumulate per stripe.
    const float32x4_t prod = vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc_lo = vaddq_f64(acc_lo, vcvt_f64_f32(vget_low_f32(prod)));
    acc_hi = vaddq_f64(acc_hi, vcvt_f64_f32(vget_high_f32(prod)));
  }
  double lanes[4];
  vst1q_f64(lanes, acc_lo);
  vst1q_f64(lanes + 2, acc_hi);
  for (; i < n; ++i) {
    lanes[i - main] += static_cast<double>(a[i] * b[i]);
  }
  return ReduceCenteredLanes(lanes);
#else
  // 32-bit NEON has no float64x2_t: run the striped reference directly.
  double lanes[4] = {0, 0, 0, 0};
  const size_t main = n - n % 4;
  size_t i = 0;
  for (; i < main; i += 4) {
    for (size_t l = 0; l < 4; ++l) {
      lanes[l] += static_cast<double>(a[i + l] * b[i + l]);
    }
  }
  for (; i < n; ++i) {
    lanes[i - main] += static_cast<double>(a[i] * b[i]);
  }
  return ReduceCenteredLanes(lanes);
#endif
}

void EncodeAccumulateNeon(const uint8_t* value, size_t count, size_t stride,
                          size_t num_slots, uint64_t* lanes) {
  // NEON has no 64-bit gather; process two slots per iteration with scalar
  // LUT loads and a vector add. Integer adds are exact, so bit-identity is
  // free regardless of the split.
  size_t t = 0;
  if (num_slots >= 2) {
    const size_t rounds = count / num_slots;
    const size_t slots2 = num_slots - num_slots % 2;
    for (size_t r = 0; r < rounds; ++r) {
      const size_t base = r * num_slots;
      size_t s = 0;
      for (; s < slots2; s += 2) {
        const size_t v = (base + s) * stride;
        const uint64_t g0 = kBitSpread[value[v]];
        const uint64_t g1 = kBitSpread[value[v + stride]];
        uint64x2_t gathered = vcombine_u64(vcreate_u64(g0), vcreate_u64(g1));
        vst1q_u64(lanes + s, vaddq_u64(vld1q_u64(lanes + s), gathered));
      }
      for (; s < num_slots; ++s) {
        lanes[s] += kBitSpread[value[(base + s) * stride]];
      }
    }
    t = rounds * num_slots;
  }
  size_t slot = t % num_slots;
  for (; t < count; ++t) {
    lanes[slot] += kBitSpread[value[t * stride]];
    if (++slot == num_slots) {
      slot = 0;
    }
  }
}

uint64_t PopcountBytesNeon(const uint8_t* p, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(p + i);
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
  }
  uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    total += static_cast<uint64_t>(std::popcount(w));
  }
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(std::popcount(p[i]));
  }
  return total;
}

uint64_t HammingBytesNeon(const uint8_t* a, const uint8_t* b, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = veorq_u8(vld1q_u8(a + i), vld1q_u8(b + i));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
  }
  uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i + 8 <= n; i += 8) {
    uint64_t wa;
    uint64_t wb;
    std::memcpy(&wa, a + i, 8);
    std::memcpy(&wb, b + i, 8);
    total += static_cast<uint64_t>(std::popcount(wa ^ wb));
  }
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(
        std::popcount(static_cast<uint8_t>(a[i] ^ b[i])));
  }
  return total;
}

size_t NextDirtyWordNeon(const uint8_t* resident, const uint8_t* incoming,
                         size_t from, size_t words) {
  size_t w = from;
  // Two words per compare: XOR the 16-byte block and check for any set
  // bit via the max across lanes.
  for (; w + 2 <= words; w += 2) {
    const uint8x16_t r = vld1q_u8(resident + w * 8);
    const uint8x16_t i = vld1q_u8(incoming + w * 8);
    const uint8x16_t diff = veorq_u8(r, i);
#if defined(__aarch64__)
    if (vmaxvq_u8(diff) == 0) {
      continue;
    }
#else
    const uint64x2_t d64 = vreinterpretq_u64_u8(diff);
    if ((vgetq_lane_u64(d64, 0) | vgetq_lane_u64(d64, 1)) == 0) {
      continue;
    }
#endif
    const uint64x2_t d = vreinterpretq_u64_u8(diff);
    return vgetq_lane_u64(d, 0) != 0 ? w : w + 1;
  }
  for (; w < words; ++w) {
    uint64_t r;
    uint64_t i;
    std::memcpy(&r, resident + w * 8, 8);
    std::memcpy(&i, incoming + w * 8, 8);
    if (r != i) {
      return w;
    }
  }
  return words;
}

constexpr KernelTable kNeonTable = {
    Isa::kNeon,        DotNeon,          ArgminCentroidsNeon,
    DotCenteredNeon,   EncodeAccumulateNeon,
    PopcountBytesNeon, HammingBytesNeon, NextDirtyWordNeon,
};

}  // namespace

const KernelTable* NeonKernelTable() { return &kNeonTable; }

}  // namespace pnw::simd

#else  // !__ARM_NEON

namespace pnw::simd {

const KernelTable* NeonKernelTable() { return nullptr; }

}  // namespace pnw::simd

#endif  // __ARM_NEON
