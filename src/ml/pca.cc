#include "src/ml/pca.h"

#include <algorithm>
#include <cmath>

#include "src/util/random.h"
#include "src/util/simd.h"

namespace pnw::ml {

void PcaModel::Transform(std::span<const float> sample,
                         std::span<float> out) const {
  std::vector<float> centered;
  Transform(sample, out, centered);
}

void PcaModel::Transform(std::span<const float> sample, std::span<float> out,
                         std::vector<float>& centered_scratch) const {
  const size_t d = components_.cols();
  centered_scratch.resize(d);
  for (size_t j = 0; j < d; ++j) {
    centered_scratch[j] = sample[j] - mean_[j];
  }
  // Striped float-multiply / double-accumulate dot per component (see
  // src/util/simd.h): bit-identical across dispatch targets, so a trained
  // pipeline projects the same on every machine.
  const auto& kernels = simd::Kernels();
  for (size_t c = 0; c < components_.rows(); ++c) {
    const auto comp = components_.Row(c);
    out[c] = static_cast<float>(
        kernels.dot_centered(centered_scratch.data(), comp.data(), d));
  }
}

Matrix PcaModel::TransformBatch(const Matrix& data) const {
  Matrix out(data.rows(), num_components());
  for (size_t i = 0; i < data.rows(); ++i) {
    Transform(data.Row(i), out.Row(i));
  }
  return out;
}

double PcaModel::CumulativeVarianceRatio(size_t m) const {
  double acc = 0.0;
  for (size_t i = 0; i < m && i < explained_variance_.size(); ++i) {
    acc += explained_variance_[i];
  }
  return total_variance_ > 0 ? acc / total_variance_ : 0.0;
}

Result<PcaModel> PcaTrainer::Fit(const Matrix& data) const {
  if (data.empty()) {
    return Status::InvalidArgument("pca: empty training matrix");
  }
  if (options_.num_components == 0) {
    return Status::InvalidArgument("pca: num_components must be positive");
  }
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t m = std::min(options_.num_components, d);

  // Column means.
  std::vector<float> mean(d, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) {
      mean[j] += row[j];
    }
  }
  for (float& v : mean) {
    v /= static_cast<float>(n);
  }

  // Sample covariance (d x d, double accumulation for stability).
  std::vector<double> cov(d * d, 0.0);
  std::vector<float> centered(d);
  for (size_t i = 0; i < n; ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) {
      centered[j] = row[j] - mean[j];
    }
    for (size_t a = 0; a < d; ++a) {
      const double ca = centered[a];
      if (ca == 0.0) {
        continue;  // bit features are sparse after centering around p~0/1
      }
      double* cov_row = cov.data() + a * d;
      for (size_t b = a; b < d; ++b) {
        cov_row[b] += ca * centered[b];
      }
    }
  }
  const double inv_n1 = n > 1 ? 1.0 / static_cast<double>(n - 1) : 1.0;
  double total_variance = 0.0;
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      cov[a * d + b] *= inv_n1;
      cov[b * d + a] = cov[a * d + b];
    }
    total_variance += cov[a * d + a];
  }

  // Power iteration with Hotelling deflation for the top-m eigenpairs.
  Rng rng(options_.seed);
  Matrix components(m, d);
  std::vector<double> eigenvalues(m, 0.0);
  std::vector<double> v(d);
  std::vector<double> w(d);
  for (size_t c = 0; c < m; ++c) {
    for (size_t j = 0; j < d; ++j) {
      v[j] = rng.NextGaussian();
    }
    double lambda = 0.0;
    for (size_t it = 0; it < options_.power_iterations; ++it) {
      // w = Cov * v
      for (size_t a = 0; a < d; ++a) {
        double acc = 0.0;
        const double* cov_row = cov.data() + a * d;
        for (size_t b = 0; b < d; ++b) {
          acc += cov_row[b] * v[b];
        }
        w[a] = acc;
      }
      double norm = 0.0;
      for (double x : w) {
        norm += x * x;
      }
      norm = std::sqrt(norm);
      if (norm < 1e-30) {
        // Covariance is (numerically) zero in the remaining subspace.
        break;
      }
      double diff = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double next = w[j] / norm;
        diff += std::abs(next - v[j]);
        v[j] = next;
      }
      lambda = norm;
      if (diff < options_.tolerance) {
        break;
      }
    }
    eigenvalues[c] = lambda;
    auto comp = components.Row(c);
    for (size_t j = 0; j < d; ++j) {
      comp[j] = static_cast<float>(v[j]);
    }
    // Deflate: Cov -= lambda * v v^T.
    for (size_t a = 0; a < d; ++a) {
      const double va = lambda * v[a];
      double* cov_row = cov.data() + a * d;
      for (size_t b = 0; b < d; ++b) {
        cov_row[b] -= va * v[b];
      }
    }
  }

  return PcaModel(std::move(mean), std::move(components),
                  std::move(eigenvalues), total_variance);
}

}  // namespace pnw::ml
