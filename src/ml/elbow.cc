#include "src/ml/elbow.h"

#include <cmath>

namespace pnw::ml {

std::vector<ElbowPoint> ComputeElbowCurve(const Matrix& data,
                                          const std::vector<size_t>& ks,
                                          const KMeansOptions& base_options) {
  std::vector<ElbowPoint> curve;
  curve.reserve(ks.size());
  for (size_t k : ks) {
    KMeansOptions options = base_options;
    options.k = k;
    KMeansTrainer trainer(options);
    auto model = trainer.Fit(data);
    if (model.ok()) {
      curve.push_back({k, model.value().sse()});
    }
  }
  return curve;
}

size_t FindElbowK(const std::vector<ElbowPoint>& curve) {
  if (curve.size() < 3) {
    return curve.empty() ? 0 : curve.front().k;
  }
  // Normalize both axes to [0,1], then maximize distance to the chord from
  // the first to the last point.
  const double x0 = static_cast<double>(curve.front().k);
  const double x1 = static_cast<double>(curve.back().k);
  const double y0 = curve.front().sse;
  const double y1 = curve.back().sse;
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  size_t best_k = curve.front().k;
  double best_dist = -1.0;
  for (const auto& p : curve) {
    const double nx = dx != 0 ? (static_cast<double>(p.k) - x0) / dx : 0.0;
    const double ny = dy != 0 ? (p.sse - y0) / dy : 0.0;
    // Chord in normalized space runs from (0,0) to (1,1); point-line
    // distance is |nx - ny| / sqrt(2).
    const double dist = std::abs(nx - ny);
    if (dist > best_dist) {
      best_dist = dist;
      best_k = p.k;
    }
  }
  return best_k;
}

}  // namespace pnw::ml
