#include "src/ml/feature_encoder.h"

#include <algorithm>
#include <vector>

#include "src/util/simd.h"

namespace pnw::ml {

BitFeatureEncoder::BitFeatureEncoder(size_t value_bytes, size_t max_features,
                                     size_t byte_stride)
    : value_bytes_(value_bytes),
      byte_stride_(std::max<size_t>(1, byte_stride)) {
  const size_t bits = value_bytes * 8;
  if (max_features == 0 || max_features >= bits) {
    dims_ = bits;
    folded_ = false;
  } else {
    // Keep the fold byte-aligned (multiple of 8) so encoding never needs a
    // per-bit modulo -- this is the hottest loop of every Predict() call.
    dims_ = std::max<size_t>(8, max_features - max_features % 8);
    folded_ = true;
  }
}

void BitFeatureEncoder::Encode(std::span<const uint8_t> value,
                               std::span<float> out) const {
  std::vector<uint64_t> lanes;
  Encode(value, out, lanes);
}

void BitFeatureEncoder::Encode(std::span<const uint8_t> value,
                               std::span<float> out,
                               std::vector<uint64_t>& lanes_scratch) const {
  std::fill(out.begin(), out.end(), 0.0f);
  const size_t n = std::min(value.size(), value_bytes_);
  if (!folded_) {
    for (size_t i = 0; i < n; ++i) {
      uint8_t byte = value[i];
      while (byte != 0) {  // zero bytes (sparse data) cost nothing
        const int b = __builtin_ctz(byte);
        out[i * 8 + static_cast<size_t>(b)] = 1.0f;
        byte = static_cast<uint8_t>(byte & (byte - 1));
      }
    }
    return;
  }
  // dims_ is a multiple of 8: byte i's bits land on the aligned 8-feature
  // slot at (i*8) mod dims_. Each byte is expanded via simd::kBitSpread
  // into eight 0/1 byte lanes of a uint64 and accumulated with a single
  // add -- one add per input byte, dense or sparse -- by the dispatched
  // encode_accumulate kernel.
  const size_t num_slots = dims_ / 8;
  lanes_scratch.assign(num_slots, 0);
  std::vector<uint64_t>& lanes = lanes_scratch;
  auto flush = [&]() {
    for (size_t s = 0; s < num_slots; ++s) {
      uint64_t packed = lanes[s];
      for (size_t b = 0; b < 8; ++b) {
        out[s * 8 + b] += static_cast<float>(packed & 0xff);
        packed >>= 8;
      }
      lanes[s] = 0;
    }
  };
  // Each lane is one byte wide: flush before 256 accumulations per slot.
  // flush_every is a multiple of num_slots, so every chunk starts at slot 0
  // (the kernel's precondition).
  const size_t flush_every = 255 * num_slots;
  const size_t count = (n + byte_stride_ - 1) / byte_stride_;
  const auto& kernels = simd::Kernels();
  size_t done = 0;
  while (done < count) {
    const size_t chunk = std::min(flush_every, count - done);
    kernels.encode_accumulate(value.data() + done * byte_stride_, chunk,
                              byte_stride_, num_slots, lanes.data());
    flush();
    done += chunk;
  }
  if (count == 0) {
    flush();
  }
}

Matrix BitFeatureEncoder::EncodeBatch(
    std::span<const std::vector<uint8_t>> values) const {
  Matrix m(values.size(), dims_);
  for (size_t r = 0; r < values.size(); ++r) {
    Encode(values[r], m.Row(r));
  }
  return m;
}

}  // namespace pnw::ml
