#ifndef PNW_ML_FEATURE_ENCODER_H_
#define PNW_ML_FEATURE_ENCODER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/ml/matrix.h"

namespace pnw::ml {

/// Encodes stored byte strings into K-means feature vectors.
///
/// The paper: "each memory location is encoded as a vector of bits, each of
/// which is used as a feature/dimension". For large values this explodes
/// (the curse of dimensionality), so the encoder optionally *folds* the bit
/// vector: feature j accumulates the popcount of bits j, j+F, j+2F, ...
/// where F = max_features. Folding preserves positional bit structure (two
/// values with small Hamming distance have nearby folded vectors) while
/// bounding the model dimension; PCA can then shrink it further.
class BitFeatureEncoder {
 public:
  /// `value_bytes`: size of every encoded value. `max_features`: cap on the
  /// output dimension (0 = no cap, one feature per bit). `byte_stride`
  /// subsamples the value in folded mode (every stride-th byte is encoded),
  /// bounding per-PUT prediction cost for multi-KB values; 1 = every byte.
  BitFeatureEncoder(size_t value_bytes, size_t max_features = 0,
                    size_t byte_stride = 1);

  /// Output dimensionality.
  size_t dims() const { return dims_; }
  size_t value_bytes() const { return value_bytes_; }
  /// True when the bit vector is folded down to dims() features (dims() is
  /// then the effective max_features; an unfolded encoder reconstructs
  /// with max_features = 0). Exposed so a trained encoder can be
  /// serialized and rebuilt bit-identically by the persist layer.
  bool folded() const { return folded_; }
  size_t byte_stride() const { return byte_stride_; }

  /// Encode one value into `out` (must have size dims()).
  void Encode(std::span<const uint8_t> value, std::span<float> out) const;

  /// Allocation-free variant for hot paths: `lanes_scratch` is resized (and
  /// reused across calls, so steady-state encoding never touches the heap)
  /// to hold the folded-mode lane accumulators. Identical output to
  /// Encode(value, out).
  void Encode(std::span<const uint8_t> value, std::span<float> out,
              std::vector<uint64_t>& lanes_scratch) const;

  /// Encode a batch into a fresh matrix (one row per value).
  Matrix EncodeBatch(std::span<const std::vector<uint8_t>> values) const;

 private:
  size_t value_bytes_;
  size_t dims_;
  bool folded_;
  size_t byte_stride_;
};

}  // namespace pnw::ml

#endif  // PNW_ML_FEATURE_ENCODER_H_
