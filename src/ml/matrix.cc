#include "src/ml/matrix.h"

#include "src/util/simd.h"

namespace pnw::ml {

void Matrix::AppendRow(std::span<const float> row) {
  if (cols_ == 0) {
    cols_ = row.size();
  }
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

float DotProduct(std::span<const float> a, std::span<const float> b) {
  // Striped-lane kernel: bit-identical across every dispatch target (see
  // src/util/simd.h), so model predictions are machine-independent.
  return simd::Kernels().dot(a.data(), b.data(), a.size());
}

float SquaredDistance(std::span<const float> a, std::span<const float> b) {
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace pnw::ml
