#include "src/ml/matrix.h"

namespace pnw::ml {

void Matrix::AppendRow(std::span<const float> row) {
  if (cols_ == 0) {
    cols_ = row.size();
  }
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

float DotProduct(std::span<const float> a, std::span<const float> b) {
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

float SquaredDistance(std::span<const float> a, std::span<const float> b) {
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace pnw::ml
