#ifndef PNW_ML_PCA_H_
#define PNW_ML_PCA_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/ml/matrix.h"
#include "src/util/status.h"

namespace pnw::ml {

/// Principal Component Analysis via the sample covariance matrix and power
/// iteration with deflation. The paper applies PCA before K-means for large
/// values ("for large data elements (e.g. 4KB) we first apply dimensionality
/// reduction using PCA") and plots the explained-variance ratio (Fig. 3).
struct PcaOptions {
  /// Number of principal components to keep.
  size_t num_components = 16;
  /// Power-iteration rounds per component.
  size_t power_iterations = 100;
  /// Convergence threshold on the eigenvector update.
  double tolerance = 1e-6;
  uint64_t seed = 7;
};

class PcaModel {
 public:
  PcaModel() = default;
  PcaModel(std::vector<float> mean, Matrix components,
           std::vector<double> explained_variance, double total_variance)
      : mean_(std::move(mean)),
        components_(std::move(components)),
        explained_variance_(std::move(explained_variance)),
        total_variance_(total_variance) {}

  bool trained() const { return components_.rows() > 0; }
  size_t num_components() const { return components_.rows(); }
  size_t input_dims() const { return components_.cols(); }

  /// Project one sample onto the principal subspace. `out` must have
  /// size num_components().
  void Transform(std::span<const float> sample, std::span<float> out) const;

  /// Allocation-free variant for hot paths: `centered_scratch` is resized
  /// to input_dims() and reused across calls. The sample is centered once
  /// into it, then every component is projected with a pure dot product
  /// over the centered buffer -- one subtraction per input element total,
  /// instead of one per element *per component*. Identical output to
  /// Transform(sample, out).
  void Transform(std::span<const float> sample, std::span<float> out,
                 std::vector<float>& centered_scratch) const;

  /// Project every row of `data`.
  Matrix TransformBatch(const Matrix& data) const;

  /// Eigenvalue of component i (variance captured along it).
  double explained_variance(size_t i) const { return explained_variance_[i]; }

  /// Fraction of total variance captured by component i (Fig. 3 y-axis).
  double explained_variance_ratio(size_t i) const {
    return total_variance_ > 0 ? explained_variance_[i] / total_variance_ : 0;
  }

  /// Cumulative ratio captured by the first `m` components.
  double CumulativeVarianceRatio(size_t m) const;

  const Matrix& components() const { return components_; }
  /// Training-set mean subtracted before projection (needed, with the
  /// components, to serialize a trained model -- paper recipe: PCA basis
  /// persists across restarts so recovery never re-fits it).
  const std::vector<float>& mean() const { return mean_; }
  /// All component eigenvalues (see explained_variance(i)).
  const std::vector<double>& explained_variances() const {
    return explained_variance_;
  }
  double total_variance() const { return total_variance_; }

 private:
  std::vector<float> mean_;
  Matrix components_;  // rows = components, cols = input dims
  std::vector<double> explained_variance_;
  double total_variance_ = 0.0;
};

/// Fits a PcaModel on row-major sample data.
class PcaTrainer {
 public:
  explicit PcaTrainer(const PcaOptions& options) : options_(options) {}

  /// Fails with InvalidArgument on an empty matrix or zero components.
  Result<PcaModel> Fit(const Matrix& data) const;

 private:
  PcaOptions options_;
};

}  // namespace pnw::ml

#endif  // PNW_ML_PCA_H_
