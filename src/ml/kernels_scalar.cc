// Scalar reference kernels + the runtime dispatch machinery.
//
// This translation unit is compiled with vectorization disabled and
// -ffp-contract=off (see src/CMakeLists.txt): the striped-lane loops below
// ARE the semantics every SIMD kernel must reproduce bit-for-bit, so the
// compiler must not fuse the multiply-adds (an FMA rounds once where the
// reference rounds twice) and should not silently re-vectorize the
// reference the SIMD tables are benchmarked against.

#include "src/util/simd.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>

namespace pnw::simd {

namespace {

constexpr std::array<uint64_t, 256> MakeBitSpread() {
  std::array<uint64_t, 256> table{};
  for (unsigned v = 0; v < 256; ++v) {
    uint64_t spread = 0;
    for (unsigned b = 0; b < 8; ++b) {
      spread |= static_cast<uint64_t>((v >> b) & 1) << (8 * b);
    }
    table[v] = spread;
  }
  return table;
}

float DotScalar(const float* a, const float* b, size_t n) {
  float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const size_t main = n - n % 8;
  size_t i = 0;
  for (; i < main; i += 8) {
    for (size_t l = 0; l < 8; ++l) {
      lanes[l] += a[i + l] * b[i + l];
    }
  }
  for (; i < n; ++i) {
    lanes[i - main] += a[i] * b[i];
  }
  return ReduceDotLanes(lanes);
}

size_t ArgminCentroidsScalar(const float* x, const float* centroids,
                             const float* norms, size_t k, size_t dims,
                             float* best_score) {
  size_t best = 0;
  float best_val = std::numeric_limits<float>::max();
  for (size_t c = 0; c < k; ++c) {
    const float score = norms[c] - 2.0f * DotScalar(x, centroids + c * dims,
                                                    dims);
    if (score < best_val) {
      best_val = score;
      best = c;
    }
  }
  *best_score = best_val;
  return best;
}

double DotCenteredScalar(const float* a, const float* b, size_t n) {
  double lanes[4] = {0, 0, 0, 0};
  const size_t main = n - n % 4;
  size_t i = 0;
  for (; i < main; i += 4) {
    for (size_t l = 0; l < 4; ++l) {
      // Product rounds in float (both operands are float), accumulation
      // is double: the exact promotion the historical PCA loop performed.
      lanes[l] += static_cast<double>(a[i + l] * b[i + l]);
    }
  }
  for (; i < n; ++i) {
    lanes[i - main] += static_cast<double>(a[i] * b[i]);
  }
  return ReduceCenteredLanes(lanes);
}

void EncodeAccumulateScalar(const uint8_t* value, size_t count, size_t stride,
                            size_t num_slots, uint64_t* lanes) {
  size_t slot = 0;
  for (size_t t = 0; t < count; ++t) {
    lanes[slot] += kBitSpread[value[t * stride]];
    if (++slot == num_slots) {
      slot = 0;
    }
  }
}

uint64_t PopcountBytesScalar(const uint8_t* p, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  // 8-byte strides via memcpy keep this alignment-safe.
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    total += static_cast<uint64_t>(std::popcount(w));
  }
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(std::popcount(p[i]));
  }
  return total;
}

uint64_t HammingBytesScalar(const uint8_t* a, const uint8_t* b, size_t n) {
  uint64_t total = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t wa;
    uint64_t wb;
    std::memcpy(&wa, a + i, 8);
    std::memcpy(&wb, b + i, 8);
    total += static_cast<uint64_t>(std::popcount(wa ^ wb));
  }
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(
        std::popcount(static_cast<uint8_t>(a[i] ^ b[i])));
  }
  return total;
}

size_t NextDirtyWordScalar(const uint8_t* resident, const uint8_t* incoming,
                           size_t from, size_t words) {
  for (size_t w = from; w < words; ++w) {
    uint64_t r;
    uint64_t i;
    std::memcpy(&r, resident + w * 8, 8);
    std::memcpy(&i, incoming + w * 8, 8);
    if (r != i) {
      return w;
    }
  }
  return words;
}

constexpr KernelTable kScalarTable = {
    Isa::kScalar,        DotScalar,          ArgminCentroidsScalar,
    DotCenteredScalar,   EncodeAccumulateScalar,
    PopcountBytesScalar, HammingBytesScalar, NextDirtyWordScalar,
};

/// Startup selection: PNW_KERNEL_ISA override first, then the best ISA the
/// host supports. Runs once (function-local static).
const KernelTable* SelectStartupTable() {
  if (const char* env = std::getenv("PNW_KERNEL_ISA")) {
    const std::string_view want(env);
    for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kNeon}) {
      if (want == IsaName(isa)) {
        if (const KernelTable* table = TableFor(isa)) {
          return table;
        }
        break;  // named but unreachable: fall through to auto-selection
      }
    }
  }
  if (const KernelTable* avx2 = TableFor(Isa::kAvx2)) {
    return avx2;
  }
  if (const KernelTable* neon = TableFor(Isa::kNeon)) {
    return neon;
  }
  return &kScalarTable;
}

std::atomic<const KernelTable*>& ActiveTable() {
  static std::atomic<const KernelTable*> active{SelectStartupTable()};
  return active;
}

}  // namespace

const std::array<uint64_t, 256> kBitSpread = MakeBitSpread();

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

// Defined by kernels_avx2.cc / kernels_neon.cc; each returns nullptr when
// its ISA is not compiled in or the running CPU lacks it.
const KernelTable* Avx2KernelTable();
const KernelTable* NeonKernelTable();

const KernelTable& ScalarKernels() { return kScalarTable; }

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &kScalarTable;
    case Isa::kAvx2:
      return Avx2KernelTable();
    case Isa::kNeon:
      return NeonKernelTable();
  }
  return nullptr;
}

const KernelTable& Kernels() {
  return *ActiveTable().load(std::memory_order_relaxed);
}

Isa ActiveIsa() { return Kernels().isa; }

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kNeon}) {
    if (TableFor(isa) != nullptr) {
      out.push_back(isa);
    }
  }
  return out;
}

bool PinIsa(Isa isa) {
  const KernelTable* table = TableFor(isa);
  if (table == nullptr) {
    return false;
  }
  ActiveTable().store(table, std::memory_order_relaxed);
  return true;
}

void UnpinIsa() {
  ActiveTable().store(SelectStartupTable(), std::memory_order_relaxed);
}

}  // namespace pnw::simd
