#ifndef PNW_ML_MATRIX_H_
#define PNW_ML_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

namespace pnw::ml {

/// Dense row-major float matrix: rows are samples, columns are features.
/// This mirrors the paper's framing of the data zone as "a 2D tensor of
/// shape (n, m)" with one bit per feature. float (not double) halves the
/// training working set; bit features lose nothing.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  std::span<float> Row(size_t r) {
    return std::span<float>(data_.data() + r * cols_, cols_);
  }
  std::span<const float> Row(size_t r) const {
    return std::span<const float>(data_.data() + r * cols_, cols_);
  }

  /// Append a row (must match cols(); sets cols() if the matrix is empty).
  void AppendRow(std::span<const float> row);

  const std::vector<float>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// Squared Euclidean distance between two equal-length vectors.
float SquaredDistance(std::span<const float> a, std::span<const float> b);

/// Inner product of two equal-length vectors, routed through the
/// runtime-dispatched striped-lane kernel (src/util/simd.h). Backs
/// KMeansModel's "‖c‖² − 2·x·c" distance form; bit-identical across every
/// dispatch target, so predictions never depend on the host ISA.
float DotProduct(std::span<const float> a, std::span<const float> b);

}  // namespace pnw::ml

#endif  // PNW_ML_MATRIX_H_
