#ifndef PNW_PERSIST_OP_LOG_H_
#define PNW_PERSIST_OP_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/persist/serializer.h"
#include "src/util/status.h"

namespace pnw::persist {

/// Operation kind of one op-log record. PUT and UPDATE replay identically
/// (PnwStore::Put upgrades to Update when the key exists) but are recorded
/// distinctly so a log is also a faithful trace of what the client did.
/// MIGRATE records a hot-bucket relocation the store performed on itself:
/// the key field holds the *logical bucket index* that was re-placed, and
/// replay re-runs the relocation deterministically (same victim content,
/// same pool state, hence the same destination) so wear histograms and
/// remapper registers come back bit-for-bit.
enum class OpType : uint8_t {
  kPut = 0,
  kUpdate = 1,
  kDelete = 2,
  kMigrate = 3,
};

/// One replayable record: the operation, the key, and (for PUT/UPDATE) the
/// full value bytes.
struct OpRecord {
  OpType op = OpType::kPut;
  uint64_t key = 0;
  std::vector<uint8_t> value;
};

/// One entry of an AppendBatch group: like OpRecord, but the value bytes
/// are borrowed from the caller (valid for the duration of the call), so
/// batching a MultiPut never copies payloads.
struct OpLogEntry {
  OpType op = OpType::kPut;
  uint64_t key = 0;
  std::span<const uint8_t> value;
};

/// Result of scanning an op-log file (see ReadOpLog).
struct OpLogContents {
  std::vector<OpRecord> records;
  /// Checkpoint epoch stamped in the header: the log is only valid on top
  /// of the snapshot carrying the same epoch. A log left over from a
  /// crash *between* a snapshot rename and the log reset carries the
  /// previous epoch, and recovery discards it instead of replaying
  /// records the snapshot already folded in.
  uint64_t epoch = 0;
  /// True when the file exists and starts with a valid header (a missing
  /// or zero-length log parses as `!has_header` with no records).
  bool has_header = false;
  /// Byte offset of the end of the last intact record (header included).
  /// Recovery truncates the file to this length before appending, so a
  /// torn tail is physically removed, not just skipped.
  uint64_t valid_bytes = 0;
  /// True when trailing bytes after `valid_bytes` were dropped (a record
  /// torn by a crash mid-append, or tail corruption).
  bool tail_truncated = false;
};

/// Append-only write-ahead log of PUT/UPDATE/DELETE between checkpoints
/// (the cheap half of the durability recipe; the snapshot in snapshot.h is
/// the expensive half).
///
/// File layout: a 16-byte header -- 8-byte magic ("PNWLOG1\n") plus the
/// u64 checkpoint epoch this log extends -- followed by records:
///
///     u32 crc32(body) | u32 body_length | body
///     body = u8 op | u64 key | value bytes (body_length - 9 of them)
///
/// Appends are buffered through stdio and flushed to the OS on every
/// record; fdatasync is paid only every `sync_every` records (group
/// fsync) or on an explicit Sync(). A crash can therefore lose at most the
/// last un-synced group -- and can tear at most the final record, which
/// recovery detects by CRC and truncates (ReadOpLog::tail_truncated).
class OpLogWriter {
 public:
  /// Open `path` for appending, creating it (with a header stamping
  /// `epoch`) if absent or empty; an existing non-empty log keeps its
  /// header (callers verify its epoch via ReadOpLog before appending).
  /// `sync_every` = N means one fdatasync per N appended records
  /// (1 = sync every record; the durable-but-slow setting).
  static Result<std::unique_ptr<OpLogWriter>> Open(const std::string& path,
                                                   size_t sync_every,
                                                   uint64_t epoch);

  ~OpLogWriter();
  OpLogWriter(const OpLogWriter&) = delete;
  OpLogWriter& operator=(const OpLogWriter&) = delete;

  /// Append one record and flush it to the OS; every `sync_every`-th
  /// append also forces it to stable storage.
  Status Append(OpType op, uint64_t key, std::span<const uint8_t> value);

  /// Append a whole group of records with ONE buffer build, ONE fwrite and
  /// ONE flush to the OS -- the batched write path's amortization -- while
  /// the group-fsync policy stays record-based: the batch advances the
  /// sync counter by its size and pays at most one (deferred) fdatasync
  /// when it crosses `sync_every`, instead of one flush per record. The
  /// on-disk format is unchanged: a batch of N is byte-identical to N
  /// single Appends, so ReadOpLog replays either the same way. An empty
  /// batch is a no-op.
  Status AppendBatch(std::span<const OpLogEntry> entries);

  /// Force everything appended so far to stable storage.
  Status Sync();

  /// Truncate the log to empty and stamp a fresh header carrying `epoch`
  /// (called after a successful checkpoint captured everything the log
  /// held; the new epoch ties the emptied log to that snapshot).
  Status Reset(uint64_t epoch);

  /// Records appended through this writer (not counting pre-existing ones).
  uint64_t appended() const { return appended_; }

  const std::string& path() const { return path_; }

 private:
  OpLogWriter(std::string path, std::FILE* file, size_t sync_every)
      : path_(std::move(path)), file_(file), sync_every_(sync_every) {}

  Status WriteHeader(uint64_t epoch);

  std::string path_;
  std::FILE* file_;
  size_t sync_every_;
  size_t since_sync_ = 0;
  uint64_t appended_ = 0;
  /// Reusable framing scratch (capacity persists across appends, so the
  /// steady-state append path performs no heap allocation).
  BufferWriter body_scratch_;
  BufferWriter frame_scratch_;
};

/// Scan an op-log file, stopping at the first incomplete or checksum-failed
/// record (the torn tail a crash mid-append leaves behind). A missing file
/// parses as an empty log; a file whose header is not an op-log header is
/// Corruption. A nonzero `resume_offset` (a record boundary previously
/// observed, e.g. the log size at snapshot time) skips the records before
/// it and returns only the tail -- how a coordinated checkpoint carries
/// the operations that raced its snapshot into the next generation's log.
Result<OpLogContents> ReadOpLog(const std::string& path,
                                uint64_t resume_offset = 0);

/// Physically truncate `path` to `valid_bytes` (used by recovery to drop a
/// torn tail before re-attaching a writer).
Status TruncateOpLog(const std::string& path, uint64_t valid_bytes);

}  // namespace pnw::persist

#endif  // PNW_PERSIST_OP_LOG_H_
