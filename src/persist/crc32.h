#ifndef PNW_PERSIST_CRC32_H_
#define PNW_PERSIST_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace pnw::persist {

/// Reflected CRC-32 (IEEE 802.3 polynomial 0xEDB88320, the zlib/gzip
/// variant). Every on-disk artifact of the durability subsystem -- snapshot
/// sections and op-log records -- carries one of these so recovery can
/// distinguish "torn tail / bit rot" from "valid state" before trusting a
/// single byte of it.
uint32_t Crc32(std::span<const uint8_t> data);

/// Incremental form: feed `data` into a running checksum. Start from
/// `kCrc32Init` and finish with `Crc32Finish`.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data);
inline uint32_t Crc32Finish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace pnw::persist

#endif  // PNW_PERSIST_CRC32_H_
