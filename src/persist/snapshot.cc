#include "src/persist/snapshot.h"

#include <string>

#include "src/persist/crc32.h"

namespace pnw::persist {

BufferWriter& SnapshotWriter::AddSection(uint32_t id) {
  sections_.emplace_back(id, BufferWriter{});
  return sections_.back().second;
}

Status SnapshotWriter::WriteToFile(const std::string& path) const {
  // Stream header + per-section frames + the payloads themselves straight
  // from their owning buffers: no second full-container copy in memory
  // (the device-contents section alone is the size of the simulated
  // chip).
  BufferWriter header;
  header.PutU32(kSnapshotMagic);
  header.PutU32(kSnapshotContainerVersion);
  header.PutU32(payload_version_);
  header.PutU32(static_cast<uint32_t>(sections_.size()));
  std::vector<BufferWriter> frames;
  frames.reserve(sections_.size());
  std::vector<std::span<const uint8_t>> parts;
  parts.reserve(1 + 2 * sections_.size());
  parts.emplace_back(header.data());
  for (const auto& [id, payload] : sections_) {
    BufferWriter& frame = frames.emplace_back();
    frame.PutU32(id);
    frame.PutU64(payload.size());
    frame.PutU32(Crc32(payload.data()));
    parts.emplace_back(frame.data());
    parts.emplace_back(payload.data());
  }
  return AtomicWriteFileParts(path, parts);
}

Result<SnapshotReader> SnapshotReader::Parse(
    std::vector<uint8_t> bytes, uint32_t expected_payload_version) {
  SnapshotReader snap;
  snap.bytes_ = std::move(bytes);
  BufferReader r(snap.bytes_);
  uint32_t magic = 0;
  uint32_t container_version = 0;
  uint32_t section_count = 0;
  if (!r.GetU32(&magic).ok() || magic != kSnapshotMagic) {
    return Status::Corruption("not a PNW snapshot (bad magic)");
  }
  PNW_RETURN_IF_ERROR(r.GetU32(&container_version));
  if (container_version != kSnapshotContainerVersion) {
    return Status::InvalidArgument(
        "snapshot container version mismatch: file has v" +
        std::to_string(container_version) + ", library reads v" +
        std::to_string(kSnapshotContainerVersion));
  }
  PNW_RETURN_IF_ERROR(r.GetU32(&snap.payload_version_));
  if (snap.payload_version_ != expected_payload_version) {
    return Status::InvalidArgument(
        "snapshot version mismatch: file has v" +
        std::to_string(snap.payload_version_) + ", library reads v" +
        std::to_string(expected_payload_version));
  }
  PNW_RETURN_IF_ERROR(r.GetU32(&section_count));
  for (uint32_t s = 0; s < section_count; ++s) {
    uint32_t id = 0;
    uint64_t length = 0;
    uint32_t crc = 0;
    PNW_RETURN_IF_ERROR(r.GetU32(&id));
    PNW_RETURN_IF_ERROR(r.GetU64(&length));
    PNW_RETURN_IF_ERROR(r.GetU32(&crc));
    if (length > r.remaining()) {
      return Status::Corruption("snapshot section " + std::to_string(id) +
                                " truncated");
    }
    const size_t offset = r.position();
    const std::span<const uint8_t> payload(snap.bytes_.data() + offset,
                                           length);
    if (Crc32(payload) != crc) {
      return Status::Corruption("snapshot section " + std::to_string(id) +
                                " failed its checksum");
    }
    for (const auto& existing : snap.sections_) {
      if (existing.id == id) {
        return Status::Corruption("snapshot has duplicate section " +
                                  std::to_string(id));
      }
    }
    snap.sections_.push_back(SectionRef{id, offset, length});
    PNW_RETURN_IF_ERROR(r.Skip(length));
  }
  return snap;
}

Result<SnapshotReader> SnapshotReader::FromFile(
    const std::string& path, uint32_t expected_payload_version) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    return bytes.status();
  }
  return Parse(std::move(bytes.value()), expected_payload_version);
}

bool SnapshotReader::HasSection(uint32_t id) const {
  for (const auto& s : sections_) {
    if (s.id == id) {
      return true;
    }
  }
  return false;
}

Result<BufferReader> SnapshotReader::Section(uint32_t id) const {
  for (const auto& s : sections_) {
    if (s.id == id) {
      return BufferReader(
          std::span<const uint8_t>(bytes_.data() + s.offset, s.length));
    }
  }
  return Status::NotFound("snapshot has no section " + std::to_string(id));
}

}  // namespace pnw::persist
