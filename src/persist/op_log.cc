#include "src/persist/op_log.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <memory>

#include "src/persist/crc32.h"
#include "src/persist/serializer.h"

namespace pnw::persist {

namespace {

constexpr char kLogMagic[8] = {'P', 'N', 'W', 'L', 'O', 'G', '1', '\n'};
/// Header = magic + u64 checkpoint epoch.
constexpr size_t kHeaderBytes = sizeof(kLogMagic) + 8;
/// Record body = op (1) + key (8); value bytes follow.
constexpr size_t kBodyFixedBytes = 9;
/// Record frame = crc (4) + body_length (4).
constexpr size_t kFrameBytes = 8;

}  // namespace

Result<std::unique_ptr<OpLogWriter>> OpLogWriter::Open(
    const std::string& path, size_t sync_every, uint64_t epoch) {
  if (sync_every == 0) {
    return Status::InvalidArgument("op-log sync_every must be >= 1");
  }
  // Append mode creates the file when missing and positions every write at
  // the end, so re-attaching after recovery continues behind the replayed
  // records.
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::Internal("op-log open failed for " + path + ": " +
                            std::strerror(errno));
  }
  std::unique_ptr<OpLogWriter> writer(
      new OpLogWriter(path, file, sync_every));
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (!ec && size == 0) {
    PNW_RETURN_IF_ERROR(writer->WriteHeader(epoch));
    // A brand-new log file is a new directory entry: persist it, or a
    // power failure could drop the whole (otherwise fsync'd) log.
    SyncParentDir(path);
  }
  return writer;
}

Status OpLogWriter::WriteHeader(uint64_t epoch) {
  BufferWriter header;
  header.PutBytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(kLogMagic), sizeof(kLogMagic)));
  header.PutU64(epoch);
  const auto& bytes = header.data();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size() ||
      std::fflush(file_) != 0) {
    return Status::Internal("op-log header write failed for " + path_);
  }
  return Status::OK();
}

OpLogWriter::~OpLogWriter() {
  if (file_ != nullptr) {
    // status-dropped: a destructor cannot report; callers needing durable
    // shutdown call Sync() themselves and see its Status.
    (void)Sync();
    // status-dropped: everything reachable was already fsync'd above; the
    // close result has no remaining consumer.
    (void)std::fclose(file_);
  }
}

Status OpLogWriter::Append(OpType op, uint64_t key,
                           std::span<const uint8_t> value) {
  const OpLogEntry entry{op, key, value};
  return AppendBatch(std::span<const OpLogEntry>(&entry, 1));
}

Status OpLogWriter::AppendBatch(std::span<const OpLogEntry> entries) {
  if (entries.empty()) {
    return Status::OK();
  }
  // Frame every record into one contiguous buffer (scratch capacity is
  // reused, so a warm append path allocates nothing), then hand the whole
  // group to stdio with a single fwrite + fflush.
  frame_scratch_.Clear();
  for (const OpLogEntry& entry : entries) {
    body_scratch_.Clear();
    body_scratch_.PutU8(static_cast<uint8_t>(entry.op));
    body_scratch_.PutU64(entry.key);
    body_scratch_.PutBytes(entry.value);
    frame_scratch_.PutU32(Crc32(body_scratch_.data()));
    frame_scratch_.PutU32(static_cast<uint32_t>(body_scratch_.size()));
    frame_scratch_.PutBytes(body_scratch_.data());
  }
  const auto& bytes = frame_scratch_.data();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::Internal("op-log append failed for " + path_);
  }
  // Hand the group to the OS in one flush (a process crash loses nothing);
  // pay the device sync only when the record counter crosses the group
  // boundary -- one deferred fsync per batch at most, never one per record.
  if (std::fflush(file_) != 0) {
    return Status::Internal("op-log flush failed for " + path_);
  }
  appended_ += entries.size();
  since_sync_ += entries.size();
  if (since_sync_ >= sync_every_) {
    return Sync();
  }
  return Status::OK();
}

Status OpLogWriter::Sync() {
  if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    return Status::Internal("op-log fsync failed for " + path_);
  }
  since_sync_ = 0;
  return Status::OK();
}

Status OpLogWriter::Reset(uint64_t epoch) {
  if (std::fflush(file_) != 0 || ::ftruncate(fileno(file_), 0) != 0) {
    return Status::Internal("op-log truncate failed for " + path_);
  }
  // "ab" keeps appending at the (new) end; re-seek for portability.
  std::fseek(file_, 0, SEEK_END);
  PNW_RETURN_IF_ERROR(WriteHeader(epoch));
  return Sync();
}

Result<OpLogContents> ReadOpLog(const std::string& path,
                                uint64_t resume_offset) {
  OpLogContents contents;
  auto file = ReadFileBytes(path);
  if (!file.ok()) {
    if (file.status().IsNotFound()) {
      return contents;  // no log yet: nothing to replay
    }
    return file.status();
  }
  const std::vector<uint8_t>& bytes = file.value();
  if (bytes.empty()) {
    return contents;
  }
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kLogMagic, sizeof(kLogMagic)) != 0) {
    return Status::Corruption("not a PNW op-log: " + path);
  }
  {
    BufferReader header(std::span<const uint8_t>(
        bytes.data() + sizeof(kLogMagic), kHeaderBytes - sizeof(kLogMagic)));
    PNW_RETURN_IF_ERROR(header.GetU64(&contents.epoch));
  }
  contents.has_header = true;
  const size_t start =
      std::max<uint64_t>(kHeaderBytes,
                         std::min<uint64_t>(resume_offset, bytes.size()));
  contents.valid_bytes = start;
  BufferReader r(std::span<const uint8_t>(bytes.data() + start,
                                          bytes.size() - start));
  while (!r.AtEnd()) {
    uint32_t crc = 0;
    uint32_t body_len = 0;
    if (r.remaining() < kFrameBytes || !r.GetU32(&crc).ok() ||
        !r.GetU32(&body_len).ok() || body_len < kBodyFixedBytes ||
        body_len > r.remaining()) {
      contents.tail_truncated = true;
      break;
    }
    std::vector<uint8_t> body(body_len);
    if (!r.GetBytes(body).ok() || Crc32(body) != crc) {
      contents.tail_truncated = true;
      break;
    }
    BufferReader br(body);
    OpRecord rec;
    uint8_t op = 0;
    if (!br.GetU8(&op).ok() || op > static_cast<uint8_t>(OpType::kMigrate) ||
        !br.GetU64(&rec.key).ok()) {
      contents.tail_truncated = true;
      break;
    }
    rec.op = static_cast<OpType>(op);
    rec.value.assign(body.begin() + kBodyFixedBytes, body.end());
    contents.records.push_back(std::move(rec));
    contents.valid_bytes = start + r.position();
  }
  return contents;
}

Status TruncateOpLog(const std::string& path, uint64_t valid_bytes) {
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) {
    return Status::Internal("op-log truncate failed for " + path + ": " +
                            ec.message());
  }
  return Status::OK();
}

}  // namespace pnw::persist
