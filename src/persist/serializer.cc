#include "src/persist/serializer.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace pnw::persist {

void BufferWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void BufferWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BufferWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BufferWriter::PutFloat(float v) { PutU32(std::bit_cast<uint32_t>(v)); }

void BufferWriter::PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }

void BufferWriter::PutBytes(std::span<const uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void BufferWriter::PutSizedBytes(std::span<const uint8_t> bytes) {
  PutU64(bytes.size());
  PutBytes(bytes);
}

void BufferWriter::PutU16Vec(const std::vector<uint16_t>& v) {
  PutU64(v.size());
  for (uint16_t x : v) {
    PutU16(x);
  }
}

void BufferWriter::PutU32Vec(const std::vector<uint32_t>& v) {
  PutU64(v.size());
  for (uint32_t x : v) {
    PutU32(x);
  }
}

void BufferWriter::PutU64Vec(const std::vector<uint64_t>& v) {
  PutU64(v.size());
  for (uint64_t x : v) {
    PutU64(x);
  }
}

void BufferWriter::PutFloatVec(const std::vector<float>& v) {
  PutU64(v.size());
  for (float x : v) {
    PutFloat(x);
  }
}

void BufferWriter::PutDoubleVec(const std::vector<double>& v) {
  PutU64(v.size());
  for (double x : v) {
    PutDouble(x);
  }
}

Status BufferReader::Need(size_t n) {
  if (remaining() < n) {
    return Status::Corruption("serialized buffer truncated");
  }
  return Status::OK();
}

Status BufferReader::CheckedCount(uint64_t count, size_t elem_size) {
  if (elem_size != 0 && count > remaining() / elem_size) {
    return Status::Corruption("serialized element count exceeds buffer");
  }
  return Status::OK();
}

Status BufferReader::Skip(size_t n) {
  PNW_RETURN_IF_ERROR(Need(n));
  pos_ += n;
  return Status::OK();
}

Status BufferReader::GetU8(uint8_t* out) {
  PNW_RETURN_IF_ERROR(Need(1));
  *out = data_[pos_++];
  return Status::OK();
}

Status BufferReader::GetBool(bool* out) {
  uint8_t v = 0;
  PNW_RETURN_IF_ERROR(GetU8(&v));
  if (v > 1) {
    return Status::Corruption("serialized bool out of range");
  }
  *out = v != 0;
  return Status::OK();
}

Status BufferReader::GetU16(uint16_t* out) {
  PNW_RETURN_IF_ERROR(Need(2));
  *out = static_cast<uint16_t>(data_[pos_] |
                               (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return Status::OK();
}

Status BufferReader::GetU32(uint32_t* out) {
  PNW_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status BufferReader::GetU64(uint64_t* out) {
  PNW_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status BufferReader::GetFloat(float* out) {
  uint32_t bits = 0;
  PNW_RETURN_IF_ERROR(GetU32(&bits));
  *out = std::bit_cast<float>(bits);
  return Status::OK();
}

Status BufferReader::GetDouble(double* out) {
  uint64_t bits = 0;
  PNW_RETURN_IF_ERROR(GetU64(&bits));
  *out = std::bit_cast<double>(bits);
  return Status::OK();
}

Status BufferReader::GetBytes(std::span<uint8_t> out) {
  PNW_RETURN_IF_ERROR(Need(out.size()));
  std::memcpy(out.data(), data_.data() + pos_, out.size());
  pos_ += out.size();
  return Status::OK();
}

Status BufferReader::GetSizedBytes(std::vector<uint8_t>* out) {
  uint64_t n = 0;
  PNW_RETURN_IF_ERROR(GetU64(&n));
  PNW_RETURN_IF_ERROR(CheckedCount(n, 1));
  out->resize(n);
  return GetBytes(*out);
}

Status BufferReader::GetU16Vec(std::vector<uint16_t>* out) {
  uint64_t n = 0;
  PNW_RETURN_IF_ERROR(GetU64(&n));
  PNW_RETURN_IF_ERROR(CheckedCount(n, 2));
  out->resize(n);
  for (auto& x : *out) {
    PNW_RETURN_IF_ERROR(GetU16(&x));
  }
  return Status::OK();
}

Status BufferReader::GetU32Vec(std::vector<uint32_t>* out) {
  uint64_t n = 0;
  PNW_RETURN_IF_ERROR(GetU64(&n));
  PNW_RETURN_IF_ERROR(CheckedCount(n, 4));
  out->resize(n);
  for (auto& x : *out) {
    PNW_RETURN_IF_ERROR(GetU32(&x));
  }
  return Status::OK();
}

Status BufferReader::GetU64Vec(std::vector<uint64_t>* out) {
  uint64_t n = 0;
  PNW_RETURN_IF_ERROR(GetU64(&n));
  PNW_RETURN_IF_ERROR(CheckedCount(n, 8));
  out->resize(n);
  for (auto& x : *out) {
    PNW_RETURN_IF_ERROR(GetU64(&x));
  }
  return Status::OK();
}

Status BufferReader::GetFloatVec(std::vector<float>* out) {
  uint64_t n = 0;
  PNW_RETURN_IF_ERROR(GetU64(&n));
  PNW_RETURN_IF_ERROR(CheckedCount(n, 4));
  out->resize(n);
  for (auto& x : *out) {
    PNW_RETURN_IF_ERROR(GetFloat(&x));
  }
  return Status::OK();
}

Status BufferReader::GetDoubleVec(std::vector<double>* out) {
  uint64_t n = 0;
  PNW_RETURN_IF_ERROR(GetU64(&n));
  PNW_RETURN_IF_ERROR(CheckedCount(n, 8));
  out->resize(n);
  for (auto& x : *out) {
    PNW_RETURN_IF_ERROR(GetDouble(&x));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::Internal("open failed for " + path + ": " +
                            std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("read failed for " + path + ": " + err);
    }
    if (n == 0) {
      break;
    }
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  ::close(fd);
  return bytes;
}

Status AtomicWriteFile(const std::string& path,
                       std::span<const uint8_t> bytes) {
  const std::span<const uint8_t> parts[] = {bytes};
  return AtomicWriteFileParts(path, parts);
}

Status AtomicWriteFileParts(
    const std::string& path,
    std::span<const std::span<const uint8_t>> parts) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("open failed for " + tmp + ": " +
                            std::strerror(errno));
  }
  for (const auto& bytes : parts) {
    size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n =
          ::write(fd, bytes.data() + written, bytes.size() - written);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        const std::string err = std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return Status::Internal("write failed for " + tmp + ": " + err);
      }
      written += static_cast<size_t>(n);
    }
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("fsync failed for " + tmp + ": " + err);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Status::Internal("rename failed for " + path + ": " + err);
  }
  // Persist the rename itself.
  SyncParentDir(path);
  return Status::OK();
}

void SyncParentDir(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dirfd = ::open(dir.empty() ? "." : dir.c_str(),
                           O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    // status-dropped: directory fsync is best-effort hardening (some
    // filesystems refuse it); the data-file fsync is the durability point.
    (void)::fsync(dirfd);
    // status-dropped: read-only descriptor, nothing buffered to lose.
    (void)::close(dirfd);
  }
}

}  // namespace pnw::persist
