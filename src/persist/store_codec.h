#ifndef PNW_PERSIST_STORE_CODEC_H_
#define PNW_PERSIST_STORE_CODEC_H_

#include <memory>

#include "src/core/metrics.h"
#include "src/core/model_manager.h"
#include "src/core/pnw_options.h"
#include "src/ml/matrix.h"
#include "src/nvm/nvm_device.h"
#include "src/persist/serializer.h"
#include "src/util/status.h"

namespace pnw::persist {

/// Field-level codecs shared by the PnwStore snapshot and the
/// ShardedPnwStore manifest. Each Encode* writes a fixed field order; the
/// matching Decode* validates ranges (enums, sizes) so a corrupted or
/// adversarial payload fails with a clean Status instead of constructing
/// an impossible store. The snapshot payload version (see
/// core::PnwStore::kSnapshotVersion) is bumped whenever any of these
/// layouts change.

void EncodePnwOptions(const core::PnwOptions& options, BufferWriter& w);
Status DecodePnwOptions(BufferReader& r, core::PnwOptions* options);

void EncodeMatrix(const ml::Matrix& m, BufferWriter& w);
Status DecodeMatrix(BufferReader& r, ml::Matrix* m);

/// Serializes the full prediction pipeline: bit-feature encoder geometry,
/// the optional PCA basis (mean + components + variances), and the K-means
/// centroids -- everything needed to serve predictions after recovery
/// without retraining. `model` may be null (a model-less store).
void EncodeValueModel(const core::ValueModel* model, BufferWriter& w);
Result<std::shared_ptr<const core::ValueModel>> DecodeValueModel(
    BufferReader& r);

void EncodeStoreMetrics(const core::StoreMetrics& m, BufferWriter& w);
Status DecodeStoreMetrics(BufferReader& r, core::StoreMetrics* m);

void EncodeNvmCounters(const nvm::NvmCounters& c, BufferWriter& w);
Status DecodeNvmCounters(BufferReader& r, nvm::NvmCounters* c);

}  // namespace pnw::persist

#endif  // PNW_PERSIST_STORE_CODEC_H_
