#include "src/persist/store_codec.h"

#include <optional>
#include <utility>
#include <vector>

namespace pnw::persist {

void EncodePnwOptions(const core::PnwOptions& options, BufferWriter& w) {
  w.PutU64(options.value_bytes);
  w.PutU64(options.initial_buckets);
  w.PutU64(options.capacity_buckets);
  w.PutU64(options.num_clusters);
  w.PutU64(options.max_features);
  w.PutU64(options.pca_components);
  w.PutU64(options.training_sample_cap);
  w.PutU64(options.encode_byte_stride);
  w.PutU64(options.train_threads);
  w.PutU64(options.max_training_iterations);
  w.PutU64(options.training_mini_batch);
  w.PutDouble(options.load_factor);
  w.PutBool(options.auto_retrain);
  w.PutU64(options.retrain_min_interval);
  w.PutBool(options.background_retrain);
  w.PutBool(options.train_on_bootstrap);
  w.PutU8(static_cast<uint8_t>(options.index_placement));
  w.PutU8(static_cast<uint8_t>(options.update_mode));
  w.PutBool(options.store_keys_in_data_zone);
  w.PutBool(options.occupancy_flags_on_nvm);
  w.PutBool(options.track_bit_wear);
  w.PutBool(options.start_gap_wear_leveling);
  w.PutU64(options.gap_write_interval);
  w.PutDouble(options.migration_hot_multiplier);
  w.PutU64(options.migration_min_writes);
  w.PutU64(options.seed);
  w.PutDouble(options.latency.dram_read_ns);
  w.PutDouble(options.latency.dram_write_ns);
  w.PutDouble(options.latency.nvm_read_ns);
  w.PutDouble(options.latency.nvm_write_ns);
  w.PutDouble(options.latency.predict_overhead_ns);
}

Status DecodePnwOptions(BufferReader& r, core::PnwOptions* options) {
  core::PnwOptions o;
  uint64_t u = 0;
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.value_bytes = u;
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.initial_buckets = u;
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.capacity_buckets = u;
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.num_clusters = u;
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.max_features = u;
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.pca_components = u;
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.training_sample_cap = u;
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.encode_byte_stride = u;
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.train_threads = u;
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.max_training_iterations = u;
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.training_mini_batch = u;
  PNW_RETURN_IF_ERROR(r.GetDouble(&o.load_factor));
  PNW_RETURN_IF_ERROR(r.GetBool(&o.auto_retrain));
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.retrain_min_interval = u;
  PNW_RETURN_IF_ERROR(r.GetBool(&o.background_retrain));
  PNW_RETURN_IF_ERROR(r.GetBool(&o.train_on_bootstrap));
  uint8_t e = 0;
  PNW_RETURN_IF_ERROR(r.GetU8(&e));
  if (e > static_cast<uint8_t>(core::IndexPlacement::kNvmPathHash)) {
    return Status::Corruption("snapshot options: bad index placement");
  }
  o.index_placement = static_cast<core::IndexPlacement>(e);
  PNW_RETURN_IF_ERROR(r.GetU8(&e));
  if (e > static_cast<uint8_t>(core::UpdateMode::kLatencyFirst)) {
    return Status::Corruption("snapshot options: bad update mode");
  }
  o.update_mode = static_cast<core::UpdateMode>(e);
  PNW_RETURN_IF_ERROR(r.GetBool(&o.store_keys_in_data_zone));
  PNW_RETURN_IF_ERROR(r.GetBool(&o.occupancy_flags_on_nvm));
  PNW_RETURN_IF_ERROR(r.GetBool(&o.track_bit_wear));
  PNW_RETURN_IF_ERROR(r.GetBool(&o.start_gap_wear_leveling));
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.gap_write_interval = u;
  PNW_RETURN_IF_ERROR(r.GetDouble(&o.migration_hot_multiplier));
  PNW_RETURN_IF_ERROR(r.GetU64(&u));
  o.migration_min_writes = u;
  PNW_RETURN_IF_ERROR(r.GetU64(&o.seed));
  PNW_RETURN_IF_ERROR(r.GetDouble(&o.latency.dram_read_ns));
  PNW_RETURN_IF_ERROR(r.GetDouble(&o.latency.dram_write_ns));
  PNW_RETURN_IF_ERROR(r.GetDouble(&o.latency.nvm_read_ns));
  PNW_RETURN_IF_ERROR(r.GetDouble(&o.latency.nvm_write_ns));
  PNW_RETURN_IF_ERROR(r.GetDouble(&o.latency.predict_overhead_ns));
  *options = o;
  return Status::OK();
}

void EncodeMatrix(const ml::Matrix& m, BufferWriter& w) {
  w.PutU64(m.rows());
  w.PutU64(m.cols());
  w.PutFloatVec(m.data());
}

Status DecodeMatrix(BufferReader& r, ml::Matrix* m) {
  uint64_t rows = 0;
  uint64_t cols = 0;
  PNW_RETURN_IF_ERROR(r.GetU64(&rows));
  PNW_RETURN_IF_ERROR(r.GetU64(&cols));
  std::vector<float> data;
  PNW_RETURN_IF_ERROR(r.GetFloatVec(&data));
  // Division-form bound first: rows * cols on crafted dimensions can wrap
  // to a small value and slip past the equality check below.
  if (cols != 0 && rows > data.size() / cols) {
    return Status::Corruption("serialized matrix shape overflows its data");
  }
  if (data.size() != rows * cols) {
    return Status::Corruption("serialized matrix shape/data mismatch");
  }
  ml::Matrix out(rows, cols);
  for (size_t row = 0; row < rows; ++row) {
    auto dst = out.Row(row);
    for (size_t col = 0; col < cols; ++col) {
      dst[col] = data[row * cols + col];
    }
  }
  *m = std::move(out);
  return Status::OK();
}

void EncodeValueModel(const core::ValueModel* model, BufferWriter& w) {
  w.PutBool(model != nullptr);
  if (model == nullptr) {
    return;
  }
  const ml::BitFeatureEncoder& encoder = model->encoder();
  w.PutU64(encoder.value_bytes());
  w.PutU64(encoder.dims());
  w.PutBool(encoder.folded());
  w.PutU64(encoder.byte_stride());
  const auto& pca = model->pca();
  w.PutBool(pca.has_value());
  if (pca.has_value()) {
    w.PutFloatVec(pca->mean());
    EncodeMatrix(pca->components(), w);
    w.PutDoubleVec(pca->explained_variances());
    w.PutDouble(pca->total_variance());
  }
  EncodeMatrix(model->kmeans().centroids(), w);
  w.PutDouble(model->kmeans().sse());
}

Result<std::shared_ptr<const core::ValueModel>> DecodeValueModel(
    BufferReader& r) {
  bool present = false;
  PNW_RETURN_IF_ERROR(r.GetBool(&present));
  if (!present) {
    return std::shared_ptr<const core::ValueModel>(nullptr);
  }
  uint64_t value_bytes = 0;
  uint64_t dims = 0;
  bool folded = false;
  uint64_t byte_stride = 0;
  PNW_RETURN_IF_ERROR(r.GetU64(&value_bytes));
  PNW_RETURN_IF_ERROR(r.GetU64(&dims));
  PNW_RETURN_IF_ERROR(r.GetBool(&folded));
  PNW_RETURN_IF_ERROR(r.GetU64(&byte_stride));
  // The constructor re-derives dims from (value_bytes, max_features); a
  // folded encoder round-trips through max_features = dims (dims is a
  // multiple of 8 by construction), an unfolded one through 0.
  ml::BitFeatureEncoder encoder(value_bytes, folded ? dims : 0, byte_stride);
  if (encoder.dims() != dims || encoder.folded() != folded) {
    return Status::Corruption(
        "serialized encoder geometry does not round-trip");
  }
  std::optional<ml::PcaModel> pca;
  bool has_pca = false;
  PNW_RETURN_IF_ERROR(r.GetBool(&has_pca));
  if (has_pca) {
    std::vector<float> mean;
    ml::Matrix components;
    std::vector<double> variances;
    double total_variance = 0.0;
    PNW_RETURN_IF_ERROR(r.GetFloatVec(&mean));
    PNW_RETURN_IF_ERROR(DecodeMatrix(r, &components));
    PNW_RETURN_IF_ERROR(r.GetDoubleVec(&variances));
    PNW_RETURN_IF_ERROR(r.GetDouble(&total_variance));
    if (mean.size() != components.cols() ||
        variances.size() != components.rows()) {
      return Status::Corruption("serialized PCA model shape mismatch");
    }
    pca.emplace(std::move(mean), std::move(components), std::move(variances),
                total_variance);
  }
  ml::Matrix centroids;
  double sse = 0.0;
  PNW_RETURN_IF_ERROR(DecodeMatrix(r, &centroids));
  PNW_RETURN_IF_ERROR(r.GetDouble(&sse));
  if (centroids.rows() == 0) {
    return Status::Corruption("serialized model has no centroids");
  }
  const size_t expected_dims =
      pca.has_value() ? pca->num_components() : encoder.dims();
  if (centroids.cols() != expected_dims) {
    return Status::Corruption(
        "serialized centroid dimension does not match the feature pipeline");
  }
  return std::shared_ptr<const core::ValueModel>(
      std::make_shared<const core::ValueModel>(
          encoder, std::move(pca),
          ml::KMeansModel(std::move(centroids), sse)));
}

void EncodeStoreMetrics(const core::StoreMetrics& m, BufferWriter& w) {
  w.PutU64(m.puts);
  w.PutU64(m.gets);
  w.PutU64(m.optimistic_gets);
  w.PutU64(m.locked_gets);
  w.PutU64(m.optimistic_retries);
  w.PutU64(m.get_misses);
  w.PutU64(m.deletes);
  w.PutU64(m.updates);
  w.PutU64(m.failed_ops);
  w.PutU64(m.put_bits_written);
  w.PutU64(m.put_payload_bits);
  w.PutU64(m.put_lines_written);
  w.PutU64(m.put_words_written);
  w.PutDouble(m.put_device_ns);
  w.PutDouble(m.get_device_ns);
  w.PutDouble(m.delete_device_ns);
  w.PutDouble(m.predict_wall_ns);
  w.PutDouble(m.log_wall_ns);
  w.PutU64(m.predicted_placements);
  w.PutU64(m.fallback_placements);
  w.PutU64(m.inplace_updates);
  w.PutU64(m.pool_fallbacks);
  w.PutU64(m.retrains);
  w.PutU64(m.failed_retrains);
  w.PutU64(m.extensions);
  w.PutU64(m.migrations);
  w.PutU64(m.gap_moves);
  w.PutDouble(m.wear_device_ns);
}

Status DecodeStoreMetrics(BufferReader& r, core::StoreMetrics* m) {
  core::StoreMetrics out;
  // The read-side slots are relaxed atomics wrapped for copyability, so
  // they decode through plain temporaries.
  uint64_t gets = 0;
  uint64_t optimistic_gets = 0;
  uint64_t locked_gets = 0;
  uint64_t optimistic_retries = 0;
  uint64_t get_misses = 0;
  double get_device_ns = 0.0;
  PNW_RETURN_IF_ERROR(r.GetU64(&out.puts));
  PNW_RETURN_IF_ERROR(r.GetU64(&gets));
  PNW_RETURN_IF_ERROR(r.GetU64(&optimistic_gets));
  PNW_RETURN_IF_ERROR(r.GetU64(&locked_gets));
  PNW_RETURN_IF_ERROR(r.GetU64(&optimistic_retries));
  PNW_RETURN_IF_ERROR(r.GetU64(&get_misses));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.deletes));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.updates));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.failed_ops));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.put_bits_written));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.put_payload_bits));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.put_lines_written));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.put_words_written));
  PNW_RETURN_IF_ERROR(r.GetDouble(&out.put_device_ns));
  PNW_RETURN_IF_ERROR(r.GetDouble(&get_device_ns));
  PNW_RETURN_IF_ERROR(r.GetDouble(&out.delete_device_ns));
  PNW_RETURN_IF_ERROR(r.GetDouble(&out.predict_wall_ns));
  PNW_RETURN_IF_ERROR(r.GetDouble(&out.log_wall_ns));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.predicted_placements));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.fallback_placements));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.inplace_updates));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.pool_fallbacks));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.retrains));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.failed_retrains));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.extensions));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.migrations));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.gap_moves));
  PNW_RETURN_IF_ERROR(r.GetDouble(&out.wear_device_ns));
  out.gets = gets;
  out.optimistic_gets = optimistic_gets;
  out.locked_gets = locked_gets;
  out.optimistic_retries = optimistic_retries;
  out.get_misses = get_misses;
  out.get_device_ns = get_device_ns;
  // The arena gauges (metrics().arena_*) are deliberately not serialized:
  // they snapshot the reopened process's allocators, not store history.
  *m = out;
  return Status::OK();
}

void EncodeNvmCounters(const nvm::NvmCounters& c, BufferWriter& w) {
  w.PutU64(c.total_bits_written);
  w.PutU64(c.total_words_written);
  w.PutU64(c.total_lines_written);
  w.PutU64(c.total_lines_read);
  w.PutU64(c.total_write_ops);
  w.PutU64(c.total_read_ops);
  w.PutU64(c.total_payload_bits);
  w.PutDouble(c.total_latency_ns);
}

Status DecodeNvmCounters(BufferReader& r, nvm::NvmCounters* c) {
  nvm::NvmCounters out;
  PNW_RETURN_IF_ERROR(r.GetU64(&out.total_bits_written));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.total_words_written));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.total_lines_written));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.total_lines_read));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.total_write_ops));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.total_read_ops));
  PNW_RETURN_IF_ERROR(r.GetU64(&out.total_payload_bits));
  PNW_RETURN_IF_ERROR(r.GetDouble(&out.total_latency_ns));
  *c = out;
  return Status::OK();
}

}  // namespace pnw::persist
