#include "src/persist/crc32.h"

#include <array>

namespace pnw::persist {

namespace {

/// Table-driven byte-at-a-time CRC; the table is built once at first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data) {
  const auto& table = Crc32Table();
  for (uint8_t byte : data) {
    state = (state >> 8) ^ table[(state ^ byte) & 0xFFu];
  }
  return state;
}

uint32_t Crc32(std::span<const uint8_t> data) {
  return Crc32Finish(Crc32Update(kCrc32Init, data));
}

}  // namespace pnw::persist
