#ifndef PNW_PERSIST_RECOVERY_H_
#define PNW_PERSIST_RECOVERY_H_

#include <cstddef>

namespace pnw::persist {

/// Knobs for PnwStore::Open(path, ...) / ShardedPnwStore::Open(dir, ...).
/// The defaults give the full durability contract: replay everything the
/// op-log captured since the snapshot, then keep logging.
struct RecoveryOptions {
  /// Replay `<snapshot path> + ".oplog"` (if present) on top of the
  /// snapshot, truncating a torn tail first. Disable to recover exactly
  /// the checkpointed state and ignore later writes.
  bool replay_op_log = true;

  /// Re-attach the op-log after recovery so subsequent PUT/UPDATE/DELETE
  /// keep being captured (appending after the replayed records). Disable
  /// for read-only forensics on a checkpoint. Attaching without replay
  /// (or over a log from another checkpoint epoch) resets the log: a
  /// record that was not replayed onto the served state can never legally
  /// replay later.
  bool attach_op_log = true;

  /// Group-fsync interval handed to the re-attached op-log writer: one
  /// fdatasync per this many appended records (1 = sync every record).
  size_t op_log_sync_every = 32;
};

}  // namespace pnw::persist

#endif  // PNW_PERSIST_RECOVERY_H_
