#ifndef PNW_PERSIST_SNAPSHOT_H_
#define PNW_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/persist/serializer.h"
#include "src/util/status.h"

namespace pnw::persist {

/// On-disk snapshot container (the durable half of the PR-3 durability
/// subsystem; the other half is the op-log in op_log.h).
///
/// Layout, all little-endian:
///
///     u32 magic            "PNWS"
///     u32 container_version  (layout of THIS header; bumped only if the
///                             framing itself changes)
///     u32 payload_version    (format of the section payloads; the caller
///                             passes the version it understands and a
///                             mismatch is a clean InvalidArgument, never a
///                             misparse)
///     u32 section_count
///     section_count x:
///       u32 id | u64 length | u32 crc32(payload) | payload bytes
///
/// Every section is individually CRC-32-checked at parse time, so a
/// corrupted snapshot is rejected up front with Status::Corruption -- no
/// partially-restored store states.
inline constexpr uint32_t kSnapshotMagic = 0x53574E50u;  // "PNWS"
inline constexpr uint32_t kSnapshotContainerVersion = 1;

/// Builds a snapshot in memory section by section, then writes it to disk
/// atomically (temp file + fsync + rename, see AtomicWriteFile) so a crash
/// during Checkpoint never destroys the previous checkpoint.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(uint32_t payload_version)
      : payload_version_(payload_version) {}

  /// Start a new section; returns the writer the caller fills with the
  /// section payload. Section ids must be unique within one snapshot.
  BufferWriter& AddSection(uint32_t id);

  /// Stream header + CRC-framed sections to `path` atomically (temp file
  /// + fsync + rename), straight from the section buffers -- no second
  /// full-container copy in memory.
  Status WriteToFile(const std::string& path) const;

 private:
  uint32_t payload_version_;
  std::vector<std::pair<uint32_t, BufferWriter>> sections_;
};

/// Parses and validates a snapshot container: magic, versions, and every
/// section CRC -- all before any section is handed out.
class SnapshotReader {
 public:
  SnapshotReader() = default;

  /// Parse from memory. `expected_payload_version` is the section format
  /// the caller can decode; a file with any other payload version fails
  /// with InvalidArgument ("snapshot version mismatch").
  static Result<SnapshotReader> Parse(std::vector<uint8_t> bytes,
                                      uint32_t expected_payload_version);

  /// ReadFileBytes() + Parse().
  static Result<SnapshotReader> FromFile(const std::string& path,
                                         uint32_t expected_payload_version);

  uint32_t payload_version() const { return payload_version_; }
  bool HasSection(uint32_t id) const;

  /// Reader positioned over the payload of section `id`; NotFound if the
  /// snapshot has no such section.
  Result<BufferReader> Section(uint32_t id) const;

 private:
  struct SectionRef {
    uint32_t id;
    size_t offset;
    size_t length;
  };

  uint32_t payload_version_ = 0;
  std::vector<uint8_t> bytes_;
  std::vector<SectionRef> sections_;
};

}  // namespace pnw::persist

#endif  // PNW_PERSIST_SNAPSHOT_H_
