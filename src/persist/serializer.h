#ifndef PNW_PERSIST_SERIALIZER_H_
#define PNW_PERSIST_SERIALIZER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace pnw::persist {

/// Little-endian binary encoder backing every persisted artifact. All
/// multi-byte fields are packed byte-by-byte (never memcpy'd structs), so
/// the on-disk format is independent of host endianness, padding, and
/// struct layout -- a snapshot written on one machine opens on any other.
class BufferWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// IEEE-754 bit pattern, little-endian.
  void PutFloat(float v);
  void PutDouble(double v);
  /// Raw bytes, no length prefix (caller frames them).
  void PutBytes(std::span<const uint8_t> bytes);
  /// u64 count followed by the raw bytes.
  void PutSizedBytes(std::span<const uint8_t> bytes);
  /// u64 count followed by the elements (fixed-width little-endian each).
  void PutU16Vec(const std::vector<uint16_t>& v);
  void PutU32Vec(const std::vector<uint32_t>& v);
  void PutU64Vec(const std::vector<uint64_t>& v);
  void PutFloatVec(const std::vector<float>& v);
  void PutDoubleVec(const std::vector<double>& v);

  const std::vector<uint8_t>& data() const { return buf_; }
  size_t size() const { return buf_.size(); }
  /// Drop the content but keep the capacity, so a writer reused as a
  /// per-record scratch (the op-log's append path) stops allocating once
  /// warm.
  void Clear() { buf_.clear(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span. Every
/// getter fails with Status::Corruption instead of reading out of bounds,
/// and vector getters validate the element count against the remaining
/// bytes before allocating (a flipped length field must not OOM recovery).
class BufferReader {
 public:
  BufferReader() = default;
  explicit BufferReader(std::span<const uint8_t> data) : data_(data) {}

  Status GetU8(uint8_t* out);
  Status GetBool(bool* out);
  Status GetU16(uint16_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetFloat(float* out);
  Status GetDouble(double* out);
  /// Copy exactly out.size() bytes.
  Status GetBytes(std::span<uint8_t> out);
  /// Read a u64 count then that many bytes.
  Status GetSizedBytes(std::vector<uint8_t>* out);
  Status GetU16Vec(std::vector<uint16_t>* out);
  Status GetU32Vec(std::vector<uint32_t>* out);
  Status GetU64Vec(std::vector<uint64_t>* out);
  Status GetFloatVec(std::vector<float>* out);
  Status GetDoubleVec(std::vector<double>* out);

  /// Advance past `n` bytes without copying them.
  Status Skip(size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return remaining() == 0; }
  size_t position() const { return pos_; }

 private:
  Status Need(size_t n);
  /// Validates `count * elem_size <= remaining` before any allocation.
  Status CheckedCount(uint64_t count, size_t elem_size);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Read an entire file into memory. NotFound if the file does not exist.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// Crash-safe file replacement: write to `path + ".tmp"`, fsync the file,
/// rename over `path`, fsync the directory. A crash at any point leaves
/// either the old file or the new one -- never a torn mix.
Status AtomicWriteFile(const std::string& path,
                       std::span<const uint8_t> bytes);

/// Same guarantee, writing `parts` back to back. Lets a snapshot stream
/// its (large) section payloads straight from their owning buffers
/// instead of concatenating the whole container in memory first.
Status AtomicWriteFileParts(
    const std::string& path,
    std::span<const std::span<const uint8_t>> parts);

/// fsync the directory containing `path`, persisting a newly created
/// directory entry (a freshly created file whose *content* is fsync'd can
/// still vanish on power loss if its directory entry never hit disk).
void SyncParentDir(const std::string& path);

}  // namespace pnw::persist

#endif  // PNW_PERSIST_SERIALIZER_H_
