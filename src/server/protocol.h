// Wire protocol of the networked front-end: length-prefixed binary frames,
// versioned header, no CRC -- the transport (TCP) owns integrity, the codec
// owns *structure*. Every length field is validated against hard limits
// before a single byte of payload is trusted, so a torn, truncated, or
// adversarial stream yields a typed error (kCorruption for structural rot,
// kInvalidArgument for an unknown opcode), never a crash, hang, or
// over-read (tests/server_protocol_test.cc fuzzes exactly this contract).
//
// Frame layout (all integers little-endian):
//
//   uint32  body_len     bytes after this field (header rest + payload)
//   uint8   version      kProtocolVersion
//   uint8   opcode       Opcode
//   uint8   status       requests: 0; responses: Status::Code
//   uint8   flags        reserved, must be 0
//   uint64  request_id   echoed verbatim in the response
//   payload[body_len - kFrameHeaderAfterLen]
//
// Request payloads:
//   GET / DELETE   uint64 key
//   PUT            uint64 key, uint32 value_len, value bytes
//   MULTI_GET      uint32 count, count x uint64 key
//   MULTI_PUT      uint32 count, count x (uint64 key, uint32 len, bytes)
//   STATS          empty
//
// Response payloads:
//   GET            uint32 value_len, value bytes (empty on error status)
//   PUT / DELETE   empty
//   MULTI_GET      uint32 count, count x (uint8 status, uint32 len, bytes)
//   MULTI_PUT      uint32 count, count x uint8 status
//   STATS          uint32 count, count x (uint16 name_len, name, uint64 val)
#ifndef PNW_SERVER_PROTOCOL_H_
#define PNW_SERVER_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace pnw::server {

inline constexpr uint8_t kProtocolVersion = 1;

/// Bytes of header following the body_len field (version, opcode, status,
/// flags, request_id). The minimum legal body_len.
inline constexpr size_t kFrameHeaderAfterLen = 12;
/// The body_len field itself.
inline constexpr size_t kFrameLenBytes = 4;

enum class Opcode : uint8_t {
  kGet = 1,
  kPut = 2,
  kDelete = 3,
  kMultiGet = 4,
  kMultiPut = 5,
  kStats = 6,
};

/// True for the opcodes this protocol version defines (the decoder rejects
/// everything else as kInvalidArgument without reading the payload).
bool OpcodeKnown(uint8_t raw);

/// True for the raw status bytes this protocol version can carry. The wire
/// status space is exactly Status::Code, so every mappable code fits in the
/// response header's status byte; decoders reject anything outside the
/// range as kCorruption. This is the single choke point for the check --
/// protocol_exhaustiveness_lint.py pins its bound to the last Status::Code
/// member, so adding an error category automatically widens the wire space
/// or fails CI.
bool WireStatusKnown(uint8_t raw);

/// Decoder hard limits. Every length field in a frame is checked against
/// these *and* against the bytes actually present, in that order, so a
/// negative-wrapped or oversized length can never size an allocation.
struct ProtocolLimits {
  /// Max body_len (header rest + payload). Frames above this are rot or
  /// abuse; the connection is not recoverable past one (the stream offset
  /// is lost).
  size_t max_frame_bytes = 4u << 20;
  /// Max keys in one MULTI_GET / MULTI_PUT frame.
  size_t max_batch_keys = 1u << 16;
  /// Max bytes of one value.
  size_t max_value_bytes = 1u << 20;
};

/// One frame located in (not copied out of) a receive buffer.
struct FrameView {
  uint8_t version = 0;
  uint8_t opcode = 0;
  uint8_t status = 0;
  uint64_t request_id = 0;
  std::span<const uint8_t> payload;
  /// Total frame size in the buffer (len field + body): how far the
  /// consumer advances after handling this frame.
  size_t frame_bytes = 0;
};

/// Outcome of trying to slice one frame off the front of a byte stream.
enum class FrameResult : uint8_t {
  kOk = 0,
  /// The buffer holds a prefix of a frame that is within limits so far;
  /// read more bytes and retry. Never returned for a structurally
  /// impossible prefix -- those are kError immediately.
  kNeedMore = 1,
  kError = 2,
};

/// Slice one frame off the front of `buffer`. On kOk fills `out` (payload
/// points into `buffer`); on kError fills `error` with the typed status
/// (kCorruption: body_len below the header size or above
/// limits.max_frame_bytes, wrong version, nonzero flags). Unknown opcodes
/// are *not* an extraction error: framing is still trustworthy, so the
/// caller can answer kInvalidArgument and keep the stream.
FrameResult ExtractFrame(std::span<const uint8_t> buffer,
                         const ProtocolLimits& limits, FrameView* out,
                         Status* error);

/// A decoded request, one frame's worth.
struct Request {
  Opcode opcode = Opcode::kGet;
  uint64_t request_id = 0;
  uint64_t key = 0;                          // GET / PUT / DELETE
  std::vector<uint8_t> value;                // PUT
  std::vector<uint64_t> keys;                // MULTI_GET / MULTI_PUT
  std::vector<std::vector<uint8_t>> values;  // MULTI_PUT
};

/// A decoded response, one frame's worth.
struct Response {
  Opcode opcode = Opcode::kGet;
  uint64_t request_id = 0;
  Status::Code status = Status::Code::kOk;
  std::vector<uint8_t> value;  // GET
  /// MULTI_GET: one (status, value) per requested key, in key order.
  std::vector<std::pair<Status::Code, std::vector<uint8_t>>> slots;
  /// MULTI_PUT: one status per slot, in slot order.
  std::vector<Status::Code> statuses;
  /// STATS: flat name -> counter map (store + server counters).
  std::vector<std::pair<std::string, uint64_t>> stats;
};

/// Decode the payload of an already-extracted request frame. Returns
/// kInvalidArgument for an unknown opcode, kCorruption for any structural
/// mismatch (truncated payload, count or length past limits, trailing
/// bytes). On error `out` is unspecified.
Status DecodeRequest(const FrameView& frame, const ProtocolLimits& limits,
                     Request* out);

/// Decode the payload of an already-extracted response frame (client side).
Status DecodeResponse(const FrameView& frame, const ProtocolLimits& limits,
                      Response* out);

/// Append one encoded request frame to `out` (which may already hold
/// frames -- pipelined senders batch their writes this way).
void EncodeGet(uint64_t request_id, uint64_t key, std::vector<uint8_t>* out);
void EncodePut(uint64_t request_id, uint64_t key,
               std::span<const uint8_t> value, std::vector<uint8_t>* out);
void EncodeDelete(uint64_t request_id, uint64_t key,
                  std::vector<uint8_t>* out);
void EncodeMultiGet(uint64_t request_id, std::span<const uint64_t> keys,
                    std::vector<uint8_t>* out);
void EncodeMultiPut(uint64_t request_id, std::span<const uint64_t> keys,
                    std::span<const std::span<const uint8_t>> values,
                    std::vector<uint8_t>* out);
void EncodeStats(uint64_t request_id, std::vector<uint8_t>* out);

/// Append one encoded response frame to `out`.
void EncodeResponse(const Response& response, std::vector<uint8_t>* out);

}  // namespace pnw::server

#endif  // PNW_SERVER_PROTOCOL_H_
