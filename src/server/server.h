// The networked front-end: pnw_server's engine. A single epoll event-loop
// thread serves length-prefixed binary frames (src/server/protocol.h) over
// non-blocking TCP sockets and feeds each connection's pipelined requests
// to ShardedPnwStore::MultiGet / MultiPut, so the store's batched entry
// points -- batch prediction, one shared/exclusive lock acquisition per
// involved shard, and the op-log's group fsync -- amortize across whatever
// a client kept in flight. Admission control is two-tier: a slow reader
// (responses backing up past per_conn_outbuf_limit) stops being *read*
// until it drains (bounded memory, no disconnect), and past the global
// in-flight budget new frames are answered kOverloaded without touching
// the store. ServerMetrics counts every frame and byte so the e2e tests
// can reconcile client counts == server frames == StoreMetrics ops.
#ifndef PNW_SERVER_SERVER_H_
#define PNW_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/sharded_store.h"
#include "src/server/protocol.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace pnw::server {

/// Server configuration. The budgets are deliberately small-settable so
/// the fault-injection tests can engage backpressure deterministically.
struct ServerOptions {
  /// Listen address. Port 0 binds an ephemeral port; read the assigned
  /// one back via PnwServer::port().
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  ProtocolLimits limits;

  /// Max frames decoded from one connection into one processing burst;
  /// adjacent GETs/PUTs within the burst group into one store
  /// MultiGet/MultiPut. Anything beyond stays buffered for the next
  /// iteration (keeps one chatty pipeline from starving the loop).
  size_t max_pipeline_batch = 64;

  /// Stop *reading* a connection whose pending response bytes exceed this
  /// (resumed when the socket drains below half). This is the slow-reader
  /// valve: memory stays bounded without disconnecting anyone.
  size_t per_conn_outbuf_limit = 1u << 20;

  /// Global admission budget: response frames enqueued across all
  /// connections but not yet handed to the kernel. Past it, newly decoded
  /// frames are answered kOverloaded without reaching the store.
  size_t global_inflight_limit = 4096;

  /// SO_SNDBUF for accepted connections; 0 keeps the kernel default. The
  /// backpressure tests shrink it so a slow reader backs responses up
  /// into the server's own buffers instead of the kernel's.
  int so_sndbuf = 0;
};

/// Event-loop counters. All slots are relaxed atomics: the loop thread is
/// the only writer, but tests and the STATS opcode read them live from
/// other threads. Reconciliation identities (asserted by
/// tests/server_e2e_test.cc and the ycsb_runner --remote reconcile lines,
/// enforced by scripts/lint/metrics_reconcile_lint.py):
///   frames_in == frames_out + dropped_responses      (every decoded frame
///       gets exactly one response, delivered or dropped with its
///       connection)
///   get_keys == StoreMetrics gets + get_misses       (sole-client server)
///   put_keys == StoreMetrics puts + failed_ops
///   delete_keys == client delete hits + misses; store deletes ==
///       client delete hits + store updates (endurance-first updates are
///       internally DELETE + PUT)
///   batched_keys == get_keys + put_keys + delete_keys (every forwarded
///       key went through exactly one store call; batched_keys /
///       store_batches is the amortization the group commit actually saw).
struct ServerMetrics {
  using Counter = core::RelaxedCounter<uint64_t>;

  Counter connections_accepted;
  Counter connections_closed;

  Counter frames_in;   // frames decoded (valid frame + known opcode)
  Counter frames_out;  // response frames fully written to a socket
  Counter bytes_in;
  Counter bytes_out;
  /// Responses that were enqueued but whose connection died before the
  /// bytes left: frames_in == frames_out + dropped_responses.
  Counter dropped_responses;

  /// Keys forwarded to the store, by operation (MULTI_* frames count each
  /// of their keys; a rejected frame counts none).
  Counter get_keys;
  Counter put_keys;
  Counter delete_keys;
  Counter stats_frames;

  /// Pipelining observability: store calls issued, the keys they
  /// carried, and the largest one -- mean batch size is
  /// batched_keys / store_batches, the amortization the group commit
  /// actually saw (single-key frames that arrived pipelined group into
  /// one call; a MULTI_* frame is one call carrying its whole batch).
  Counter store_batches;
  Counter batched_keys;
  Counter max_batch_keys;

  /// Frames answered kOverloaded under the global budget (typed reject;
  /// the store was never touched).
  Counter overload_rejects;
  /// Streams that died to a framing error (bad length/version/flags) --
  /// the connection closes, nothing is answered.
  Counter protocol_errors;
  /// Well-framed frames whose payload failed to decode (unknown opcode,
  /// structural payload rot): answered with the typed error, stream kept.
  Counter decode_errors;

  /// Slow-reader valve engagements / releases (reads paused past
  /// per_conn_outbuf_limit, resumed on drain).
  Counter slow_reader_stalls;
  Counter slow_reader_resumes;

  std::string ToString() const;
};

/// The epoll front-end over one ShardedPnwStore (not owned; the store may
/// concurrently serve embedded callers, checkpoints, and migration -- the
/// per-shard locks are the interlock, same as every other entry point).
///
/// Thread model: Start() spawns one event-loop thread; Stop() (or the
/// destructor) wakes it via an eventfd, joins it, and closes every live
/// connection. All connection state is owned by the loop thread;
/// cross-thread surface is only `metrics()` (relaxed atomics), `port()`
/// (written before the thread starts), and the stop flag.
class PnwServer {
 public:
  /// Binds, listens, and starts the event loop. On error nothing is
  /// running and no fd is leaked.
  static Result<std::unique_ptr<PnwServer>> Start(core::ShardedPnwStore* store,
                                                  const ServerOptions& options);

  /// Joins the event loop and closes all connections. Idempotent; called
  /// by the destructor. Safe to call from any thread except the loop
  /// itself.
  void Stop() PNW_EXCLUDES(lifecycle_mu_);

  ~PnwServer();
  PnwServer(const PnwServer&) = delete;
  PnwServer& operator=(const PnwServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  uint16_t port() const { return port_; }
  const ServerMetrics& metrics() const { return metrics_; }
  const ServerOptions& options() const { return options_; }

 private:
  /// Per-connection state, owned and touched exclusively by the loop
  /// thread (no lock: single-threaded by construction).
  struct Connection {
    int fd = -1;
    /// Received-but-unparsed bytes; consumed_ is the parse offset so a
    /// burst doesn't memmove per frame.
    std::vector<uint8_t> inbuf;
    size_t consumed = 0;
    /// Encoded-but-unsent response bytes, and the count of response
    /// frames they hold (the global in-flight budget counts frames).
    std::vector<uint8_t> outbuf;
    size_t sent = 0;
    size_t pending_frames = 0;
    /// End offset (in outbuf) of each enqueued response frame, with a
    /// head index instead of front-erases: frames whose end is <= sent
    /// are fully written and credited back to the global budget.
    std::vector<size_t> out_frame_ends;
    size_t frame_ends_head = 0;
    bool paused_reading = false;
    /// Peer hung up or the stream is unrecoverable: flush what is queued,
    /// then close.
    bool closing = false;
  };

  PnwServer(core::ShardedPnwStore* store, const ServerOptions& options);

  Status Bind();
  void EventLoop();

  void AcceptReady();
  void ReadReady(Connection& conn);
  void WriteReady(Connection& conn);
  /// Decode and serve up to max_pipeline_batch frames from conn's inbuf.
  void ProcessFrames(Connection& conn);
  /// Execute one run of same-opcode single-key frames as a store batch.
  void ExecuteRun(Connection& conn, const std::vector<Request>& requests,
                  size_t begin, size_t end);
  void ExecuteOne(Connection& conn, const Request& request);
  void RespondStats(Connection& conn, const Request& request);
  void Enqueue(Connection& conn, const Response& response);
  /// True when the global budget admits another response frame.
  bool AdmitFrame() const;
  /// True when conn's unparsed input exceeds the valve (stop reading).
  bool InputBacklogged(const Connection& conn) const;
  /// True when conn's inbuf holds a complete (or unrecoverable) frame --
  /// i.e. ProcessFrames would make progress. A partial frame is not work.
  bool HasServableFrame(const Connection& conn) const;
  void UpdateEpoll(Connection& conn);
  void CloseConnection(int fd);

  core::ShardedPnwStore* store_;
  const ServerOptions options_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  /// Loop-thread-only state (single-threaded by construction; the
  /// lifecycle lock below owns the thread itself, not this map).
  std::unordered_map<int, Connection> connections_;
  /// Response frames enqueued across all connections and not yet written
  /// -- the global admission gauge. Loop-thread-only.
  size_t global_inflight_ = 0;
  /// Reused scratch for batch execution (loop-thread-only).
  std::vector<uint64_t> batch_keys_;
  std::vector<std::span<const uint8_t>> batch_values_;

  ServerMetrics metrics_;

  /// Start/Stop serialization, exactly the migration-pacer pattern: the
  /// lifecycle lock owns the thread object (spawn + join); the loop never
  /// takes it, so Stop can hold it across the join without deadlock. The
  /// stop flag is an atomic the loop polls after every epoll wake (the
  /// eventfd write makes that wake immediate).
  util::Mutex lifecycle_mu_;
  std::thread loop_thread_ PNW_GUARDED_BY(lifecycle_mu_);
  std::atomic<bool> stop_{false};
};

}  // namespace pnw::server

#endif  // PNW_SERVER_SERVER_H_
