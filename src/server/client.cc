#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pnw::server {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

Status WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Internal(std::string("client write: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                uint16_t port,
                                                ProtocolLimits limits,
                                                int so_rcvbuf) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  if (so_rcvbuf > 0) {
    // Before connect(): setting SO_RCVBUF afterwards would not shrink the
    // already-advertised window.
    // status-dropped: buffer sizing is a performance hint; the kernel may
    // clamp or refuse it and the connection still works.
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &so_rcvbuf,
                       sizeof(so_rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("client: host must be an IPv4 literal: " +
                                   host);
  }
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) {
      continue;
    }
    const int err = errno;
    ::close(fd);
    return Status::Internal(std::string("connect: ") + std::strerror(err));
  }
  const int one = 1;
  // status-dropped: TCP_NODELAY is a latency hint; a connection without it
  // is slower, not broken.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd, limits));
}

Client::~Client() { Abort(); }

void Client::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::WriteRaw(std::span<const uint8_t> bytes) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client: connection closed");
  }
  PNW_RETURN_IF_ERROR(WriteAll(fd_, bytes.data(), bytes.size()));
  bytes_sent_ += bytes.size();
  return Status::OK();
}

uint64_t Client::SendGet(uint64_t key) {
  const uint64_t id = NextId();
  EncodeGet(id, key, &sendbuf_);
  ++frames_sent_;
  return id;
}

uint64_t Client::SendPut(uint64_t key, std::span<const uint8_t> value) {
  const uint64_t id = NextId();
  EncodePut(id, key, value, &sendbuf_);
  ++frames_sent_;
  return id;
}

uint64_t Client::SendDelete(uint64_t key) {
  const uint64_t id = NextId();
  EncodeDelete(id, key, &sendbuf_);
  ++frames_sent_;
  return id;
}

Status Client::Flush() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client: connection closed");
  }
  if (sendbuf_.empty()) {
    return Status::OK();
  }
  PNW_RETURN_IF_ERROR(WriteAll(fd_, sendbuf_.data(), sendbuf_.size()));
  bytes_sent_ += sendbuf_.size();
  sendbuf_.clear();
  return Status::OK();
}

Result<Response> Client::ReadResponse() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client: connection closed");
  }
  for (;;) {
    FrameView frame;
    Status error;
    const std::span<const uint8_t> pending(recvbuf_.data() + recv_consumed_,
                                           recvbuf_.size() - recv_consumed_);
    const FrameResult r = ExtractFrame(pending, limits_, &frame, &error);
    if (r == FrameResult::kError) {
      return error;
    }
    if (r == FrameResult::kOk) {
      Response response;
      PNW_RETURN_IF_ERROR(DecodeResponse(frame, limits_, &response));
      recv_consumed_ += frame.frame_bytes;
      if (recv_consumed_ == recvbuf_.size()) {
        recvbuf_.clear();
        recv_consumed_ = 0;
      }
      ++responses_received_;
      return response;
    }
    // kNeedMore: compact, then block for more bytes.
    if (recv_consumed_ > 0) {
      recvbuf_.erase(recvbuf_.begin(),
                     recvbuf_.begin() + static_cast<ptrdiff_t>(recv_consumed_));
      recv_consumed_ = 0;
    }
    const size_t old_size = recvbuf_.size();
    recvbuf_.resize(old_size + kReadChunk);
    const ssize_t n = ::read(fd_, recvbuf_.data() + old_size, kReadChunk);
    if (n < 0) {
      recvbuf_.resize(old_size);
      if (errno == EINTR) {
        continue;
      }
      return Status::Internal(std::string("client read: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      recvbuf_.resize(old_size);
      return Status::Internal("client: server closed the connection");
    }
    recvbuf_.resize(old_size + static_cast<size_t>(n));
    bytes_received_ += static_cast<uint64_t>(n);
  }
}

Result<Response> Client::Receive() { return ReadResponse(); }

Result<Response> Client::RoundTrip(uint64_t id, Opcode opcode) {
  PNW_RETURN_IF_ERROR(Flush());
  Result<Response> r = ReadResponse();
  if (!r.ok()) {
    return r;
  }
  const Response& response = r.value();
  if (response.request_id != id) {
    return Status::Internal("client: response id mismatch (sent " +
                            std::to_string(id) + ", got " +
                            std::to_string(response.request_id) + ")");
  }
  if (response.opcode != opcode) {
    return Status::Internal("client: response opcode mismatch");
  }
  return r;
}

Status Client::Put(uint64_t key, std::span<const uint8_t> value) {
  const uint64_t id = SendPut(key, value);
  Result<Response> r = RoundTrip(id, Opcode::kPut);
  if (!r.ok()) {
    return r.status();
  }
  if (r.value().status != Status::Code::kOk) {
    return Status::Internal("remote put failed: status code " +
                            std::to_string(static_cast<int>(r.value().status)));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> Client::Get(uint64_t key) {
  const uint64_t id = SendGet(key);
  Result<Response> r = RoundTrip(id, Opcode::kGet);
  if (!r.ok()) {
    return r.status();
  }
  Response& response = r.value();
  switch (response.status) {
    case Status::Code::kOk:
      return std::move(response.value);
    case Status::Code::kNotFound:
      return Status::NotFound("remote get: key absent");
    case Status::Code::kOverloaded:
      return Status::Overloaded("remote get: server shed the request");
    default:
      return Status::Internal(
          "remote get failed: status code " +
          std::to_string(static_cast<int>(response.status)));
  }
}

Status Client::Delete(uint64_t key) {
  const uint64_t id = SendDelete(key);
  Result<Response> r = RoundTrip(id, Opcode::kDelete);
  if (!r.ok()) {
    return r.status();
  }
  switch (r.value().status) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kNotFound:
      return Status::NotFound("remote delete: key absent");
    case Status::Code::kOverloaded:
      return Status::Overloaded("remote delete: server shed the request");
    default:
      return Status::Internal(
          "remote delete failed: status code " +
          std::to_string(static_cast<int>(r.value().status)));
  }
}

Result<std::vector<std::pair<Status::Code, std::vector<uint8_t>>>>
Client::MultiGet(std::span<const uint64_t> keys) {
  const uint64_t id = NextId();
  EncodeMultiGet(id, keys, &sendbuf_);
  ++frames_sent_;
  Result<Response> r = RoundTrip(id, Opcode::kMultiGet);
  if (!r.ok()) {
    return r.status();
  }
  Response& response = r.value();
  if (response.status == Status::Code::kOverloaded) {
    return Status::Overloaded("remote multi-get: server shed the request");
  }
  if (response.status != Status::Code::kOk) {
    return Status::Internal(
        "remote multi-get failed: status code " +
        std::to_string(static_cast<int>(response.status)));
  }
  if (response.slots.size() != keys.size()) {
    return Status::Internal("remote multi-get: slot count mismatch");
  }
  return std::move(response.slots);
}

Result<std::vector<Status::Code>> Client::MultiPut(
    std::span<const uint64_t> keys,
    std::span<const std::span<const uint8_t>> values) {
  const uint64_t id = NextId();
  EncodeMultiPut(id, keys, values, &sendbuf_);
  ++frames_sent_;
  Result<Response> r = RoundTrip(id, Opcode::kMultiPut);
  if (!r.ok()) {
    return r.status();
  }
  Response& response = r.value();
  if (response.status == Status::Code::kOverloaded) {
    return Status::Overloaded("remote multi-put: server shed the request");
  }
  if (response.status != Status::Code::kOk) {
    return Status::Internal(
        "remote multi-put failed: status code " +
        std::to_string(static_cast<int>(response.status)));
  }
  if (response.statuses.size() != keys.size()) {
    return Status::Internal("remote multi-put: slot count mismatch");
  }
  return std::move(response.statuses);
}

Result<std::vector<Status::Code>> Client::MultiPut(
    std::span<const uint64_t> keys,
    std::span<const std::vector<uint8_t>> values) {
  std::vector<std::span<const uint8_t>> views;
  views.reserve(values.size());
  for (const std::vector<uint8_t>& v : values) {
    views.emplace_back(v.data(), v.size());
  }
  return MultiPut(keys, std::span<const std::span<const uint8_t>>(views));
}

Result<std::vector<std::pair<std::string, uint64_t>>> Client::Stats() {
  const uint64_t id = NextId();
  EncodeStats(id, &sendbuf_);
  ++frames_sent_;
  Result<Response> r = RoundTrip(id, Opcode::kStats);
  if (!r.ok()) {
    return r.status();
  }
  Response& response = r.value();
  if (response.status != Status::Code::kOk) {
    return Status::Internal("remote stats failed: status code " +
                            std::to_string(static_cast<int>(response.status)));
  }
  return std::move(response.stats);
}

}  // namespace pnw::server
