// pnw_server: the networked front-end binary. Opens a ShardedPnwStore,
// bootstraps it (the store requires a trained model before serving PUTs),
// optionally attaches a strict-durability op-log under --data-dir, then
// serves the length-prefixed binary protocol until SIGINT/SIGTERM.
//
//   pnw_server --port=0 --shards=4 --buckets=4096 --value-bytes=128
//              [--data-dir=/path/to/dir]
//
// --port=0 binds an ephemeral port; the assigned one is announced on
// stdout as "pnw_server listening on 127.0.0.1:PORT" (machine-parseable:
// scripts/remote_smoke.py and the e2e fixtures scrape it).
//
// With --data-dir the store checkpoints into the directory and reopens
// with op_log_sync_every=1, so every acked write is fsync-durable -- the
// group commit the pipelined server amortizes is then a real fsync per
// store batch, not a no-op.
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/sharded_store.h"
#include "src/persist/recovery.h"
#include "src/server/server.h"
#include "src/util/status.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int /*signum*/) { g_stop = 1; }

const char* FindFlag(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

uint64_t FlagOr(int argc, char** argv, const char* name, uint64_t fallback) {
  const char* v = FindFlag(argc, argv, name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const uint16_t port =
      static_cast<uint16_t>(FlagOr(argc, argv, "port", 0));
  const size_t shards = FlagOr(argc, argv, "shards", 4);
  const size_t buckets = FlagOr(argc, argv, "buckets", 4096);
  const size_t value_bytes = FlagOr(argc, argv, "value-bytes", 128);
  const char* data_dir = FindFlag(argc, argv, "data-dir");

  pnw::core::ShardedOptions options;
  options.num_shards = shards;
  options.store.value_bytes = value_bytes;
  options.store.initial_buckets = buckets;
  options.store.capacity_buckets = buckets * 2;
  options.store.num_clusters = 8;
  options.store.max_features = 256;
  options.store.load_factor = 0.85;

  auto opened = pnw::core::ShardedPnwStore::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "pnw_server: open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto store = std::move(opened).value();

  // The placement model trains on the bootstrap corpus; serving PUTs
  // before Bootstrap is a kFailedPrecondition by store contract.
  {
    std::vector<uint64_t> keys(buckets / 2);
    std::vector<std::vector<uint8_t>> values(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      keys[i] = i;
      values[i].resize(value_bytes);
      for (size_t b = 0; b < value_bytes; ++b) {
        values[i][b] = static_cast<uint8_t>((i * 131 + b * 17) & 0xff);
      }
    }
    const pnw::Status s = store->Bootstrap(keys, values);
    if (!s.ok()) {
      std::fprintf(stderr, "pnw_server: bootstrap failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }

  if (data_dir != nullptr) {
    const pnw::Status ckpt = store->Checkpoint(data_dir);
    if (!ckpt.ok()) {
      std::fprintf(stderr, "pnw_server: checkpoint failed: %s\n",
                   ckpt.ToString().c_str());
      return 1;
    }
    pnw::persist::RecoveryOptions recovery;
    recovery.op_log_sync_every = 1;  // strict durability: fsync per batch
    auto reopened = pnw::core::ShardedPnwStore::Open(data_dir, recovery);
    if (!reopened.ok()) {
      std::fprintf(stderr, "pnw_server: reopen failed: %s\n",
                   reopened.status().ToString().c_str());
      return 1;
    }
    store = std::move(reopened).value();
  }

  pnw::server::ServerOptions server_options;
  server_options.port = port;
  auto started = pnw::server::PnwServer::Start(store.get(), server_options);
  if (!started.ok()) {
    std::fprintf(stderr, "pnw_server: start failed: %s\n",
                 started.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(started).value();

  std::printf("pnw_server listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server->port()));
  // status-dropped: the banner is a liveness hint for wrappers; a failed
  // flush of stdout must not take the server down.
  (void)std::fflush(stdout);

  struct sigaction sa{};
  sa.sa_handler = HandleStopSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  while (g_stop == 0) {
    pause();  // returns on any signal; the loop re-checks the flag
  }

  server->Stop();
  const std::string summary = server->metrics().ToString();
  std::fprintf(stderr, "pnw_server: stopped. %s\n", summary.c_str());
  return 0;
}
