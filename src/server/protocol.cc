#include "src/server/protocol.h"

#include <cstring>

namespace pnw::server {

namespace {

/// Bounds-checked little-endian reader over one frame's payload. Every
/// accessor validates *before* touching bytes, so the decoders below can
/// never over-read no matter what the length fields claim.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const uint8_t> data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  bool ReadU8(uint8_t* out) {
    if (remaining() < 1) {
      return false;
    }
    *out = data_[pos_++];
    return true;
  }

  bool ReadU16(uint16_t* out) {
    uint16_t v = 0;
    if (!ReadRaw(&v, sizeof(v))) {
      return false;
    }
    *out = v;
    return true;
  }

  bool ReadU32(uint32_t* out) {
    uint32_t v = 0;
    if (!ReadRaw(&v, sizeof(v))) {
      return false;
    }
    *out = v;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    uint64_t v = 0;
    if (!ReadRaw(&v, sizeof(v))) {
      return false;
    }
    *out = v;
    return true;
  }

  bool ReadBytes(size_t n, std::span<const uint8_t>* out) {
    if (remaining() < n) {
      return false;
    }
    *out = data_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (remaining() < n) {
      return false;
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

void AppendU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }

void AppendU16(uint16_t v, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void AppendU32(uint32_t v, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void AppendU64(uint64_t v, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void AppendBytes(std::span<const uint8_t> bytes, std::vector<uint8_t>* out) {
  out->insert(out->end(), bytes.begin(), bytes.end());
}

/// Reserve the frame header (len placeholder + header rest) for a frame
/// being appended to `out`; returns the offset of the body_len field so
/// FinishFrame can backfill it once the payload size is known.
size_t BeginFrame(uint8_t opcode, uint8_t status, uint64_t request_id,
                  std::vector<uint8_t>* out) {
  const size_t len_at = out->size();
  AppendU32(0, out);  // body_len, backfilled
  AppendU8(kProtocolVersion, out);
  AppendU8(opcode, out);
  AppendU8(status, out);
  AppendU8(0, out);  // flags
  AppendU64(request_id, out);
  return len_at;
}

void FinishFrame(size_t len_at, std::vector<uint8_t>* out) {
  const uint32_t body_len =
      static_cast<uint32_t>(out->size() - len_at - kFrameLenBytes);
  std::memcpy(out->data() + len_at, &body_len, sizeof(body_len));
}

Status TruncatedPayload(const char* what) {
  return Status::Corruption(std::string("truncated payload: ") + what);
}

}  // namespace

bool OpcodeKnown(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Opcode::kGet) &&
         raw <= static_cast<uint8_t>(Opcode::kStats);
}

bool WireStatusKnown(uint8_t raw) {
  return raw <= static_cast<uint8_t>(Status::Code::kOverloaded);
}

FrameResult ExtractFrame(std::span<const uint8_t> buffer,
                         const ProtocolLimits& limits, FrameView* out,
                         Status* error) {
  if (buffer.size() < kFrameLenBytes) {
    return FrameResult::kNeedMore;
  }
  uint32_t body_len = 0;
  std::memcpy(&body_len, buffer.data(), sizeof(body_len));
  // Validate the length *before* waiting for the bytes it promises: a
  // negative-wrapped or absurd length must fail now, not hang a reader
  // waiting for 4 GiB that never comes.
  if (body_len < kFrameHeaderAfterLen) {
    *error = Status::Corruption("frame body_len below header size");
    return FrameResult::kError;
  }
  if (body_len > limits.max_frame_bytes) {
    *error = Status::Corruption("frame body_len beyond limit");
    return FrameResult::kError;
  }
  if (buffer.size() < kFrameLenBytes + body_len) {
    return FrameResult::kNeedMore;
  }
  const uint8_t version = buffer[4];
  const uint8_t opcode = buffer[5];
  const uint8_t status = buffer[6];
  const uint8_t flags = buffer[7];
  if (version != kProtocolVersion) {
    *error = Status::Corruption("unsupported protocol version");
    return FrameResult::kError;
  }
  if (flags != 0) {
    *error = Status::Corruption("reserved frame flags set");
    return FrameResult::kError;
  }
  uint64_t request_id = 0;
  std::memcpy(&request_id, buffer.data() + 8, sizeof(request_id));
  out->version = version;
  out->opcode = opcode;
  out->status = status;
  out->request_id = request_id;
  out->payload = buffer.subspan(kFrameLenBytes + kFrameHeaderAfterLen,
                                body_len - kFrameHeaderAfterLen);
  out->frame_bytes = kFrameLenBytes + body_len;
  return FrameResult::kOk;
}

Status DecodeRequest(const FrameView& frame, const ProtocolLimits& limits,
                     Request* out) {
  if (!OpcodeKnown(frame.opcode)) {
    return Status::InvalidArgument("unknown request opcode");
  }
  out->opcode = static_cast<Opcode>(frame.opcode);
  out->request_id = frame.request_id;
  out->value.clear();
  out->keys.clear();
  out->values.clear();
  PayloadReader reader(frame.payload);
  switch (out->opcode) {
    case Opcode::kGet:
    case Opcode::kDelete:
      if (!reader.ReadU64(&out->key)) {
        return TruncatedPayload("key");
      }
      break;
    case Opcode::kPut: {
      uint32_t len = 0;
      if (!reader.ReadU64(&out->key) || !reader.ReadU32(&len)) {
        return TruncatedPayload("key/value_len");
      }
      if (len > limits.max_value_bytes) {
        return Status::Corruption("value length beyond limit");
      }
      std::span<const uint8_t> bytes;
      if (!reader.ReadBytes(len, &bytes)) {
        return TruncatedPayload("value bytes");
      }
      out->value.assign(bytes.begin(), bytes.end());
      break;
    }
    case Opcode::kMultiGet: {
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return TruncatedPayload("key count");
      }
      if (count > limits.max_batch_keys) {
        return Status::Corruption("batch key count beyond limit");
      }
      // The count is only believed as far as the bytes back it: 8 bytes
      // per key must already be present, so a huge count in a tiny frame
      // fails here instead of sizing a reservation.
      if (reader.remaining() < size_t{count} * 8) {
        return TruncatedPayload("batch keys");
      }
      out->keys.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        reader.ReadU64(&out->keys[i]);
      }
      break;
    }
    case Opcode::kMultiPut: {
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return TruncatedPayload("slot count");
      }
      if (count > limits.max_batch_keys) {
        return Status::Corruption("batch slot count beyond limit");
      }
      // Each slot needs at least key + value_len; cheap structural floor
      // before any per-slot allocation.
      if (reader.remaining() < size_t{count} * 12) {
        return TruncatedPayload("batch slots");
      }
      out->keys.resize(count);
      out->values.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t len = 0;
        if (!reader.ReadU64(&out->keys[i]) || !reader.ReadU32(&len)) {
          return TruncatedPayload("slot key/value_len");
        }
        if (len > limits.max_value_bytes) {
          return Status::Corruption("slot value length beyond limit");
        }
        std::span<const uint8_t> bytes;
        if (!reader.ReadBytes(len, &bytes)) {
          return TruncatedPayload("slot value bytes");
        }
        out->values[i].assign(bytes.begin(), bytes.end());
      }
      break;
    }
    case Opcode::kStats:
      break;
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after request payload");
  }
  return Status::OK();
}

Status DecodeResponse(const FrameView& frame, const ProtocolLimits& limits,
                      Response* out) {
  if (!OpcodeKnown(frame.opcode)) {
    return Status::InvalidArgument("unknown response opcode");
  }
  if (!WireStatusKnown(frame.status)) {
    return Status::Corruption("unknown response status code");
  }
  out->opcode = static_cast<Opcode>(frame.opcode);
  out->request_id = frame.request_id;
  out->status = static_cast<Status::Code>(frame.status);
  out->value.clear();
  out->slots.clear();
  out->statuses.clear();
  out->stats.clear();
  PayloadReader reader(frame.payload);
  switch (out->opcode) {
    case Opcode::kGet: {
      // Error responses carry no value.
      if (out->status != Status::Code::kOk && reader.remaining() == 0) {
        break;
      }
      uint32_t len = 0;
      if (!reader.ReadU32(&len)) {
        return TruncatedPayload("value_len");
      }
      if (len > limits.max_value_bytes) {
        return Status::Corruption("value length beyond limit");
      }
      std::span<const uint8_t> bytes;
      if (!reader.ReadBytes(len, &bytes)) {
        return TruncatedPayload("value bytes");
      }
      out->value.assign(bytes.begin(), bytes.end());
      break;
    }
    case Opcode::kPut:
    case Opcode::kDelete:
      break;
    case Opcode::kMultiGet: {
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return TruncatedPayload("slot count");
      }
      if (count > limits.max_batch_keys) {
        return Status::Corruption("slot count beyond limit");
      }
      if (reader.remaining() < size_t{count} * 5) {
        return TruncatedPayload("slots");
      }
      out->slots.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t slot_status = 0;
        uint32_t len = 0;
        if (!reader.ReadU8(&slot_status) || !reader.ReadU32(&len)) {
          return TruncatedPayload("slot status/len");
        }
        if (!WireStatusKnown(slot_status)) {
          return Status::Corruption("unknown slot status code");
        }
        if (len > limits.max_value_bytes) {
          return Status::Corruption("slot value length beyond limit");
        }
        std::span<const uint8_t> bytes;
        if (!reader.ReadBytes(len, &bytes)) {
          return TruncatedPayload("slot value bytes");
        }
        out->slots[i].first = static_cast<Status::Code>(slot_status);
        out->slots[i].second.assign(bytes.begin(), bytes.end());
      }
      break;
    }
    case Opcode::kMultiPut: {
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return TruncatedPayload("status count");
      }
      if (count > limits.max_batch_keys) {
        return Status::Corruption("status count beyond limit");
      }
      if (reader.remaining() < count) {
        return TruncatedPayload("statuses");
      }
      out->statuses.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint8_t code = 0;
        reader.ReadU8(&code);
        if (!WireStatusKnown(code)) {
          return Status::Corruption("unknown slot status code");
        }
        out->statuses[i] = static_cast<Status::Code>(code);
      }
      break;
    }
    case Opcode::kStats: {
      uint32_t count = 0;
      if (!reader.ReadU32(&count)) {
        return TruncatedPayload("stat count");
      }
      if (count > limits.max_batch_keys) {
        return Status::Corruption("stat count beyond limit");
      }
      if (reader.remaining() < size_t{count} * 10) {
        return TruncatedPayload("stats");
      }
      out->stats.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        uint16_t name_len = 0;
        if (!reader.ReadU16(&name_len)) {
          return TruncatedPayload("stat name_len");
        }
        std::span<const uint8_t> name;
        uint64_t value = 0;
        if (!reader.ReadBytes(name_len, &name) || !reader.ReadU64(&value)) {
          return TruncatedPayload("stat name/value");
        }
        out->stats[i].first.assign(name.begin(), name.end());
        out->stats[i].second = value;
      }
      break;
    }
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after response payload");
  }
  return Status::OK();
}

void EncodeGet(uint64_t request_id, uint64_t key, std::vector<uint8_t>* out) {
  const size_t at =
      BeginFrame(static_cast<uint8_t>(Opcode::kGet), 0, request_id, out);
  AppendU64(key, out);
  FinishFrame(at, out);
}

void EncodePut(uint64_t request_id, uint64_t key,
               std::span<const uint8_t> value, std::vector<uint8_t>* out) {
  const size_t at =
      BeginFrame(static_cast<uint8_t>(Opcode::kPut), 0, request_id, out);
  AppendU64(key, out);
  AppendU32(static_cast<uint32_t>(value.size()), out);
  AppendBytes(value, out);
  FinishFrame(at, out);
}

void EncodeDelete(uint64_t request_id, uint64_t key,
                  std::vector<uint8_t>* out) {
  const size_t at =
      BeginFrame(static_cast<uint8_t>(Opcode::kDelete), 0, request_id, out);
  AppendU64(key, out);
  FinishFrame(at, out);
}

void EncodeMultiGet(uint64_t request_id, std::span<const uint64_t> keys,
                    std::vector<uint8_t>* out) {
  const size_t at =
      BeginFrame(static_cast<uint8_t>(Opcode::kMultiGet), 0, request_id, out);
  AppendU32(static_cast<uint32_t>(keys.size()), out);
  for (const uint64_t key : keys) {
    AppendU64(key, out);
  }
  FinishFrame(at, out);
}

void EncodeMultiPut(uint64_t request_id, std::span<const uint64_t> keys,
                    std::span<const std::span<const uint8_t>> values,
                    std::vector<uint8_t>* out) {
  const size_t at =
      BeginFrame(static_cast<uint8_t>(Opcode::kMultiPut), 0, request_id, out);
  AppendU32(static_cast<uint32_t>(keys.size()), out);
  for (size_t i = 0; i < keys.size(); ++i) {
    AppendU64(keys[i], out);
    AppendU32(static_cast<uint32_t>(values[i].size()), out);
    AppendBytes(values[i], out);
  }
  FinishFrame(at, out);
}

void EncodeStats(uint64_t request_id, std::vector<uint8_t>* out) {
  const size_t at =
      BeginFrame(static_cast<uint8_t>(Opcode::kStats), 0, request_id, out);
  FinishFrame(at, out);
}

void EncodeResponse(const Response& response, std::vector<uint8_t>* out) {
  const size_t at = BeginFrame(static_cast<uint8_t>(response.opcode),
                               static_cast<uint8_t>(response.status),
                               response.request_id, out);
  switch (response.opcode) {
    case Opcode::kGet:
      if (response.status == Status::Code::kOk) {
        AppendU32(static_cast<uint32_t>(response.value.size()), out);
        AppendBytes(response.value, out);
      }
      break;
    case Opcode::kPut:
    case Opcode::kDelete:
      break;
    case Opcode::kMultiGet:
      AppendU32(static_cast<uint32_t>(response.slots.size()), out);
      for (const auto& [code, value] : response.slots) {
        AppendU8(static_cast<uint8_t>(code), out);
        AppendU32(static_cast<uint32_t>(value.size()), out);
        AppendBytes(value, out);
      }
      break;
    case Opcode::kMultiPut:
      AppendU32(static_cast<uint32_t>(response.statuses.size()), out);
      for (const Status::Code code : response.statuses) {
        AppendU8(static_cast<uint8_t>(code), out);
      }
      break;
    case Opcode::kStats:
      AppendU32(static_cast<uint32_t>(response.stats.size()), out);
      for (const auto& [name, value] : response.stats) {
        AppendU16(static_cast<uint16_t>(name.size()), out);
        AppendBytes(std::span<const uint8_t>(
                        reinterpret_cast<const uint8_t*>(name.data()),
                        name.size()),
                    out);
        AppendU64(value, out);
      }
      break;
  }
  FinishFrame(at, out);
}

}  // namespace pnw::server
