#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

namespace pnw::server {

namespace {

/// One read() chunk. Large enough that a deep pipeline usually lands in
/// one syscall, small enough to keep per-connection memory sane.
constexpr size_t kReadChunk = 64 * 1024;

void BumpMax(core::RelaxedCounter<uint64_t>& slot, uint64_t candidate) {
  // Single-writer (the loop thread), so load-compare-store is race-free.
  if (candidate > slot.load()) {
    slot = candidate;
  }
}

}  // namespace

std::string ServerMetrics::ToString() const {
  std::ostringstream os;
  os << "conns=" << connections_accepted << "/" << connections_closed
     << " frames_in=" << frames_in << " frames_out=" << frames_out
     << " dropped=" << dropped_responses << " bytes_in=" << bytes_in
     << " bytes_out=" << bytes_out << " get_keys=" << get_keys
     << " put_keys=" << put_keys << " delete_keys=" << delete_keys
     << " stats=" << stats_frames << " batches=" << store_batches
     << " batched_keys=" << batched_keys << " max_batch=" << max_batch_keys
     << " overload_rejects=" << overload_rejects
     << " protocol_errors=" << protocol_errors
     << " decode_errors=" << decode_errors
     << " stalls=" << slow_reader_stalls << "/" << slow_reader_resumes;
  return os.str();
}

PnwServer::PnwServer(core::ShardedPnwStore* store,
                     const ServerOptions& options)
    : store_(store), options_(options) {}

Result<std::unique_ptr<PnwServer>> PnwServer::Start(
    core::ShardedPnwStore* store, const ServerOptions& options) {
  if (store == nullptr) {
    return Status::InvalidArgument("server needs a store");
  }
  if (options.max_pipeline_batch == 0 || options.global_inflight_limit == 0 ||
      options.per_conn_outbuf_limit == 0) {
    return Status::InvalidArgument("server budgets must be positive");
  }
  std::unique_ptr<PnwServer> server(new PnwServer(store, options));
  PNW_RETURN_IF_ERROR(server->Bind());
  {
    util::MutexLock lock(server->lifecycle_mu_);
    server->loop_thread_ = std::thread([raw = server.get()] {
      raw->EventLoop();
    });
  }
  return server;
}

Status PnwServer::Bind() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparsable listen host");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("bind failed: ") +
                            std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  return Status::OK();
}

void PnwServer::Stop() {
  std::thread joinable;
  {
    util::MutexLock lock(lifecycle_mu_);
    if (!loop_thread_.joinable()) {
      return;  // already stopped (or never started)
    }
    stop_.store(true, std::memory_order_release);
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd_, &one, sizeof(one));
    joinable = std::move(loop_thread_);
  }
  joinable.join();
  // The loop has exited: its single-threaded state is now ours to tear
  // down. Queued-but-unsent responses die with their connections.
  for (auto& [fd, conn] : connections_) {
    metrics_.dropped_responses += conn.pending_frames;
    ++metrics_.connections_closed;
    ::close(fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
}

PnwServer::~PnwServer() { Stop(); }

void PnwServer::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    // Leftover complete frames (a burst larger than max_pipeline_batch)
    // mean there is work regardless of socket readiness: poll instead of
    // sleeping. The 500 ms cap is a belt over the eventfd wakeup. The
    // probe must be "a *complete* frame is buffered", not "bytes are
    // buffered" -- a partial frame parks as kNeedMore and would otherwise
    // busy-spin the loop until its tail arrives.
    bool work_pending = false;
    for (auto& [fd, conn] : connections_) {
      if (!conn.paused_reading && !conn.closing && HasServableFrame(conn)) {
        work_pending = true;
        break;
      }
    }
    const int timeout_ms = work_pending ? 0 : 500;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0 && errno != EINTR) {
      break;  // epoll itself failed; nothing sane to do but shut down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      // A connection closed earlier in this batch can still have a stale
      // event entry; look it up fresh.
      auto it = connections_.find(fd);
      if (it == connections_.end()) {
        continue;
      }
      Connection& conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(fd);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        WriteReady(conn);
        if (connections_.find(fd) == connections_.end()) {
          continue;  // WriteReady may close on EPIPE / drained-and-closing
        }
      }
      if (events[i].events & EPOLLIN) {
        ReadReady(conn);
      }
    }
    // Serve leftover decoded-but-unprocessed bursts fairly: one batch per
    // connection per iteration.
    std::vector<int> pending_fds;
    for (auto& [fd, conn] : connections_) {
      if (!conn.paused_reading && !conn.closing && HasServableFrame(conn)) {
        pending_fds.push_back(fd);
      }
    }
    for (const int fd : pending_fds) {
      auto it = connections_.find(fd);
      if (it == connections_.end()) {
        continue;
      }
      ProcessFrames(it->second);
      if (connections_.find(fd) != connections_.end()) {
        WriteReady(it->second);
      }
    }
  }
}

void PnwServer::AcceptReady() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN (or a transient error): nothing more to accept
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }
    Connection conn;
    conn.fd = fd;
    connections_.emplace(fd, std::move(conn));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    ++metrics_.connections_accepted;
  }
}

bool PnwServer::HasServableFrame(const Connection& conn) const {
  const std::span<const uint8_t> unparsed(conn.inbuf.data() + conn.consumed,
                                          conn.inbuf.size() - conn.consumed);
  FrameView frame;
  Status error;
  // A framing *error* is also servable work (ProcessFrames turns it into
  // protocol_errors + close); only a clean partial frame is not.
  return ExtractFrame(unparsed, options_.limits, &frame, &error) !=
         FrameResult::kNeedMore;
}

bool PnwServer::InputBacklogged(const Connection& conn) const {
  // Unparsed bytes beyond the valve mean the client outpaces processing:
  // stop reading and let TCP flow control push back. Same bound as the
  // output valve, so per-connection memory is ~2x the limit + one chunk.
  return conn.inbuf.size() - conn.consumed > options_.per_conn_outbuf_limit;
}

void PnwServer::ReadReady(Connection& conn) {
  const int fd = conn.fd;
  bool saw_eof = false;
  while (!conn.paused_reading && !InputBacklogged(conn)) {
    const size_t old_size = conn.inbuf.size();
    conn.inbuf.resize(old_size + kReadChunk);
    const ssize_t n = ::read(fd, conn.inbuf.data() + old_size, kReadChunk);
    if (n > 0) {
      conn.inbuf.resize(old_size + static_cast<size_t>(n));
      metrics_.bytes_in += static_cast<uint64_t>(n);
      if (static_cast<size_t>(n) < kReadChunk) {
        break;  // drained the socket
      }
      continue;
    }
    conn.inbuf.resize(old_size);
    if (n == 0) {
      saw_eof = true;
    }
    // n < 0: EAGAIN (drained) or a hard error surfaced at the next event.
    break;
  }
  // Serve the complete frames that arrived -- including the tail of a
  // pipeline whose client already hung up: a complete PUT frame is
  // applied in full (and durable once the store acks it), a partial one
  // is never half-applied because it is never decoded.
  ProcessFrames(conn);
  if (connections_.find(fd) == connections_.end()) {
    return;
  }
  if (saw_eof) {
    conn.closing = true;
  }
  WriteReady(conn);  // flush what this burst produced; may close
  if (connections_.find(fd) == connections_.end()) {
    return;
  }
  UpdateEpoll(conn);
}

void PnwServer::ProcessFrames(Connection& conn) {
  std::vector<Request> requests;
  requests.reserve(options_.max_pipeline_batch);
  while (requests.size() < options_.max_pipeline_batch) {
    const std::span<const uint8_t> unparsed(
        conn.inbuf.data() + conn.consumed, conn.inbuf.size() - conn.consumed);
    FrameView frame;
    Status error;
    const FrameResult r =
        ExtractFrame(unparsed, options_.limits, &frame, &error);
    if (r == FrameResult::kNeedMore) {
      break;
    }
    if (r == FrameResult::kError) {
      // The stream offset cannot be trusted past a framing error; no
      // response is possible (there is no request id to echo reliably).
      ++metrics_.protocol_errors;
      conn.closing = true;
      conn.consumed = conn.inbuf.size();
      break;
    }
    conn.consumed += frame.frame_bytes;
    ++metrics_.frames_in;
    Request request;
    const Status decode = DecodeRequest(frame, options_.limits, &request);
    if (!decode.ok()) {
      // Framing was intact, so the stream survives: answer the typed
      // error (kInvalidArgument for an unknown opcode, kCorruption for
      // payload rot) and keep going.
      ++metrics_.decode_errors;
      Response response;
      response.opcode =
          OpcodeKnown(frame.opcode) ? static_cast<Opcode>(frame.opcode)
                                    : Opcode::kGet;
      response.request_id = frame.request_id;
      response.status = decode.code();
      Enqueue(conn, response);
      continue;
    }
    requests.push_back(std::move(request));
  }
  // Reclaim consumed prefix once it dominates the buffer.
  if (conn.consumed == conn.inbuf.size()) {
    conn.inbuf.clear();
    conn.consumed = 0;
  } else if (conn.consumed > kReadChunk) {
    conn.inbuf.erase(conn.inbuf.begin(),
                     conn.inbuf.begin() + static_cast<long>(conn.consumed));
    conn.consumed = 0;
  }
  // Execute the burst: adjacent single-key GETs (and PUTs) group into one
  // store MultiGet (MultiPut) -- the pipelining amortization -- while
  // MULTI_*, DELETE, and STATS frames execute as their own store call.
  size_t i = 0;
  while (i < requests.size()) {
    const Opcode op = requests[i].opcode;
    if (op == Opcode::kGet || op == Opcode::kPut) {
      size_t j = i + 1;
      while (j < requests.size() && requests[j].opcode == op) {
        ++j;
      }
      ExecuteRun(conn, requests, i, j);
      i = j;
    } else {
      ExecuteOne(conn, requests[i]);
      ++i;
    }
  }
}

bool PnwServer::AdmitFrame() const {
  return global_inflight_ < options_.global_inflight_limit;
}

void PnwServer::ExecuteRun(Connection& conn,
                           const std::vector<Request>& requests, size_t begin,
                           size_t end) {
  // Admission control caps the run at the remaining global budget; the
  // overflow is answered kOverloaded without touching the store.
  const size_t budget = options_.global_inflight_limit > global_inflight_
                            ? options_.global_inflight_limit - global_inflight_
                            : 0;
  const size_t admitted = begin + std::min(end - begin, budget);
  const Opcode op = requests[begin].opcode;
  const size_t n = admitted - begin;
  if (n > 0) {
    batch_keys_.clear();
    for (size_t i = begin; i < admitted; ++i) {
      batch_keys_.push_back(requests[i].key);
    }
    ++metrics_.store_batches;
    metrics_.batched_keys += n;
    BumpMax(metrics_.max_batch_keys, n);
    if (op == Opcode::kGet) {
      metrics_.get_keys += n;
      auto results = store_->MultiGet(batch_keys_);
      for (size_t i = 0; i < n; ++i) {
        Response response;
        response.opcode = Opcode::kGet;
        response.request_id = requests[begin + i].request_id;
        response.status = results[i].status().code();
        if (results[i].ok()) {
          response.value = std::move(results[i].value());
        }
        Enqueue(conn, response);
      }
    } else {
      metrics_.put_keys += n;
      batch_values_.clear();
      for (size_t i = begin; i < admitted; ++i) {
        batch_values_.emplace_back(requests[i].value);
      }
      const auto statuses = store_->MultiPut(batch_keys_, batch_values_);
      for (size_t i = 0; i < n; ++i) {
        Response response;
        response.opcode = Opcode::kPut;
        response.request_id = requests[begin + i].request_id;
        response.status = statuses[i].code();
        Enqueue(conn, response);
      }
    }
  }
  for (size_t i = admitted; i < end; ++i) {
    ++metrics_.overload_rejects;
    Response response;
    response.opcode = op;
    response.request_id = requests[i].request_id;
    response.status = Status::Code::kOverloaded;
    Enqueue(conn, response);
  }
}

void PnwServer::ExecuteOne(Connection& conn, const Request& request) {
  Response response;
  response.opcode = request.opcode;
  response.request_id = request.request_id;
  if (!AdmitFrame()) {
    ++metrics_.overload_rejects;
    response.status = Status::Code::kOverloaded;
    Enqueue(conn, response);
    return;
  }
  switch (request.opcode) {
    case Opcode::kDelete: {
      ++metrics_.delete_keys;
      ++metrics_.store_batches;
      ++metrics_.batched_keys;
      BumpMax(metrics_.max_batch_keys, 1);
      response.status = store_->Delete(request.key).code();
      break;
    }
    case Opcode::kMultiGet: {
      metrics_.get_keys += request.keys.size();
      ++metrics_.store_batches;
      metrics_.batched_keys += request.keys.size();
      BumpMax(metrics_.max_batch_keys, request.keys.size());
      auto results = store_->MultiGet(request.keys);
      response.slots.reserve(results.size());
      for (auto& result : results) {
        response.slots.emplace_back(
            result.status().code(),
            result.ok() ? std::move(result.value())
                        : std::vector<uint8_t>{});
      }
      break;
    }
    case Opcode::kMultiPut: {
      metrics_.put_keys += request.keys.size();
      ++metrics_.store_batches;
      metrics_.batched_keys += request.keys.size();
      BumpMax(metrics_.max_batch_keys, request.keys.size());
      batch_values_.clear();
      for (const auto& value : request.values) {
        batch_values_.emplace_back(value);
      }
      const auto statuses = store_->MultiPut(request.keys, batch_values_);
      response.statuses.reserve(statuses.size());
      for (const Status& status : statuses) {
        response.statuses.push_back(status.code());
      }
      break;
    }
    case Opcode::kStats:
      RespondStats(conn, request);
      return;
    case Opcode::kGet:
    case Opcode::kPut:
      // Handled by ExecuteRun; unreachable here.
      break;
  }
  Enqueue(conn, response);
}

void PnwServer::RespondStats(Connection& conn, const Request& request) {
  ++metrics_.stats_frames;
  Response response;
  response.opcode = Opcode::kStats;
  response.request_id = request.request_id;
  const core::ShardedMetrics agg = store_->AggregatedMetrics();
  const core::StoreMetrics& t = agg.totals;
  auto add = [&response](const char* name, uint64_t value) {
    response.stats.emplace_back(name, value);
  };
  add("store.puts", t.puts);
  add("store.gets", t.gets.load());
  add("store.get_misses", t.get_misses.load());
  add("store.deletes", t.deletes);
  add("store.updates", t.updates);
  add("store.failed_ops", t.failed_ops);
  add("store.inplace_updates", t.inplace_updates);
  add("store.predicted_placements", t.predicted_placements);
  add("store.fallback_placements", t.fallback_placements);
  add("store.pool_fallbacks", t.pool_fallbacks);
  add("store.extensions", t.extensions);
  add("store.migrations", t.migrations);
  add("store.gap_moves", t.gap_moves);
  add("store.put_bits_written", t.put_bits_written);
  add("store.put_payload_bits", t.put_payload_bits);
  add("store.put_lines_written", t.put_lines_written);
  add("store.put_device_ns", static_cast<uint64_t>(t.put_device_ns));
  add("store.get_device_ns", static_cast<uint64_t>(t.get_device_ns.load()));
  add("store.predict_wall_ns", static_cast<uint64_t>(t.predict_wall_ns));
  add("store.log_wall_ns", static_cast<uint64_t>(t.log_wall_ns));
  add("store.num_shards", store_->num_shards());
  add("server.connections_accepted", metrics_.connections_accepted.load());
  add("server.connections_closed", metrics_.connections_closed.load());
  add("server.frames_in", metrics_.frames_in.load());
  add("server.frames_out", metrics_.frames_out.load());
  add("server.bytes_in", metrics_.bytes_in.load());
  add("server.bytes_out", metrics_.bytes_out.load());
  add("server.dropped_responses", metrics_.dropped_responses.load());
  add("server.get_keys", metrics_.get_keys.load());
  add("server.put_keys", metrics_.put_keys.load());
  add("server.delete_keys", metrics_.delete_keys.load());
  add("server.stats_frames", metrics_.stats_frames.load());
  add("server.store_batches", metrics_.store_batches.load());
  add("server.batched_keys", metrics_.batched_keys.load());
  add("server.max_batch_keys", metrics_.max_batch_keys.load());
  add("server.overload_rejects", metrics_.overload_rejects.load());
  add("server.protocol_errors", metrics_.protocol_errors.load());
  add("server.decode_errors", metrics_.decode_errors.load());
  add("server.slow_reader_stalls", metrics_.slow_reader_stalls.load());
  add("server.slow_reader_resumes", metrics_.slow_reader_resumes.load());
  Enqueue(conn, response);
}

void PnwServer::Enqueue(Connection& conn, const Response& response) {
  EncodeResponse(response, &conn.outbuf);
  ++conn.pending_frames;
  ++global_inflight_;
  conn.out_frame_ends.push_back(conn.outbuf.size());
  const size_t backlog = conn.outbuf.size() - conn.sent;
  if (!conn.paused_reading && backlog > options_.per_conn_outbuf_limit) {
    conn.paused_reading = true;
    ++metrics_.slow_reader_stalls;
  }
}

void PnwServer::WriteReady(Connection& conn) {
  const int fd = conn.fd;
  while (conn.sent < conn.outbuf.size()) {
    const ssize_t n = ::write(fd, conn.outbuf.data() + conn.sent,
                              conn.outbuf.size() - conn.sent);
    if (n > 0) {
      conn.sent += static_cast<size_t>(n);
      metrics_.bytes_out += static_cast<uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;  // kernel buffer full; EPOLLOUT resumes the flush
    }
    // Hard write error (EPIPE after a disconnect): everything still
    // queued is dropped with the connection.
    CloseConnection(fd);
    return;
  }
  // Credit fully-written response frames back to the global budget.
  while (conn.frame_ends_head < conn.out_frame_ends.size() &&
         conn.out_frame_ends[conn.frame_ends_head] <= conn.sent) {
    ++conn.frame_ends_head;
    ++metrics_.frames_out;
    --conn.pending_frames;
    --global_inflight_;
  }
  if (conn.sent == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.sent = 0;
    conn.out_frame_ends.clear();
    conn.frame_ends_head = 0;
    if (conn.closing) {
      CloseConnection(fd);
      return;
    }
  }
  const size_t backlog = conn.outbuf.size() - conn.sent;
  if (conn.paused_reading && backlog < options_.per_conn_outbuf_limit / 2) {
    conn.paused_reading = false;
    ++metrics_.slow_reader_resumes;
  }
  UpdateEpoll(conn);
}

void PnwServer::UpdateEpoll(Connection& conn) {
  epoll_event ev{};
  ev.events = 0;
  if (!conn.paused_reading && !conn.closing && !InputBacklogged(conn)) {
    ev.events |= EPOLLIN;
  }
  if (conn.sent < conn.outbuf.size()) {
    ev.events |= EPOLLOUT;
  }
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void PnwServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) {
    return;
  }
  Connection& conn = it->second;
  metrics_.dropped_responses += conn.pending_frames;
  global_inflight_ -= conn.pending_frames;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  ++metrics_.connections_closed;
}

}  // namespace pnw::server
