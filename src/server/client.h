// Blocking TCP client for the pnw_server wire protocol -- the counterpart
// of src/server/server.h and the reference decoder consumer. Two usage
// modes share one connection:
//
//   Sync:      Put/Get/Delete/MultiGet/MultiPut/Stats -- encode one frame,
//              flush, block for its response. Simple, one round trip each.
//   Pipelined: SendGet/SendPut/SendDelete queue frames locally; Flush()
//              writes them in one syscall burst; Receive() blocks for the
//              next response. Keeping N frames in flight is what lets the
//              server group them into one MultiGet/MultiPut and amortize
//              the op-log group fsync (bench_fig19_server measures this).
//
// Not thread-safe: one Client per thread (the e2e tests and ycsb_runner
// --remote open one connection per worker thread).
#ifndef PNW_SERVER_CLIENT_H_
#define PNW_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/server/protocol.h"
#include "src/util/status.h"

namespace pnw::server {

class Client {
 public:
  /// Connects (blocking) to host:port. On error nothing is leaked.
  /// `so_rcvbuf` > 0 shrinks (and pins) the kernel receive buffer before
  /// connecting -- the backpressure tests use it so a deliberately slow
  /// reader cannot hide behind kernel buffering.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 uint16_t port,
                                                 ProtocolLimits limits = {},
                                                 int so_rcvbuf = 0);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- Sync operations (one round trip each) ---

  Status Put(uint64_t key, std::span<const uint8_t> value);
  /// kNotFound when the key is absent; other codes pass through.
  Result<std::vector<uint8_t>> Get(uint64_t key);
  Status Delete(uint64_t key);
  /// One (status, value) per key, in key order.
  Result<std::vector<std::pair<Status::Code, std::vector<uint8_t>>>> MultiGet(
      std::span<const uint64_t> keys);
  /// One status per slot, in slot order.
  Result<std::vector<Status::Code>> MultiPut(
      std::span<const uint64_t> keys,
      std::span<const std::span<const uint8_t>> values);
  Result<std::vector<Status::Code>> MultiPut(
      std::span<const uint64_t> keys,
      std::span<const std::vector<uint8_t>> values);
  /// Flat name -> counter snapshot: "store.*" (StoreMetrics) and
  /// "server.*" (ServerMetrics), the remote reconcile surface.
  Result<std::vector<std::pair<std::string, uint64_t>>> Stats();

  // --- Pipelined operations ---

  /// Queue a frame locally (no I/O). Returns its request_id.
  uint64_t SendGet(uint64_t key);
  uint64_t SendPut(uint64_t key, std::span<const uint8_t> value);
  uint64_t SendDelete(uint64_t key);
  /// Write every queued frame to the socket (one burst).
  Status Flush();
  /// Block for the next response frame, in server order (which is send
  /// order: one loop thread, FIFO per connection).
  Result<Response> Receive();

  /// Frames sent and responses received over this connection's lifetime
  /// (the client-side legs of the three-way reconcile).
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t responses_received() const { return responses_received_; }
  /// Wire bytes written / read, including WriteRaw fault injections -- the
  /// client-side legs of the server.bytes_in / bytes_out reconcile.
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

  /// Close the socket without waiting for pending responses -- the
  /// disconnect-mid-pipeline fault injection. Further calls fail.
  void Abort();

  /// Write raw bytes straight to the socket, bypassing the codec -- the
  /// torn-frame / garbage-stream fault injections send exactly the bytes
  /// a well-behaved client never would.
  Status WriteRaw(std::span<const uint8_t> bytes);

 private:
  Client(int fd, ProtocolLimits limits) : fd_(fd), limits_(limits) {}

  uint64_t NextId() { return next_request_id_++; }
  /// Blocks until one frame is decoded from the socket.
  Result<Response> ReadResponse();
  /// Flush + read one response and require its id/opcode to match.
  Result<Response> RoundTrip(uint64_t id, Opcode opcode);

  int fd_ = -1;
  const ProtocolLimits limits_;
  uint64_t next_request_id_ = 1;
  std::vector<uint8_t> sendbuf_;
  std::vector<uint8_t> recvbuf_;
  size_t recv_consumed_ = 0;
  uint64_t frames_sent_ = 0;
  uint64_t responses_received_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace pnw::server

#endif  // PNW_SERVER_CLIENT_H_
