#ifndef PNW_INDEX_KEY_INDEX_H_
#define PNW_INDEX_KEY_INDEX_H_

#include <cstdint>

#include "src/util/status.h"

namespace pnw::index {

/// The indirection layer PNW leverages: a mapping from logical keys to the
/// physical data-zone address currently holding the value. The paper's only
/// requirement of this structure is "that it can map logical keys to
/// arbitrary physical memory addresses"; both placements from Fig. 2 are
/// provided (DRAM, and NVM-resident path hashing for the paper's worst-case
/// evaluation setup).
class KeyIndex {
 public:
  virtual ~KeyIndex() = default;

  /// Insert or overwrite the mapping for `key`.
  virtual Status Put(uint64_t key, uint64_t addr) = 0;

  /// Address for `key`, or NotFound. Const because it is the concurrent
  /// read path: PnwStore::Get/MultiGet call it under a *shared* lock, so
  /// implementations must not mutate any state here (both provided indexes
  /// are pure lookups).
  virtual Result<uint64_t> Get(uint64_t key) const = 0;

  /// Logically delete `key` (the paper resets a flag bit rather than
  /// physically removing the entry). NotFound if absent.
  virtual Status Delete(uint64_t key) = 0;

  /// Number of live (non-deleted) entries.
  virtual size_t size() const = 0;
};

}  // namespace pnw::index

#endif  // PNW_INDEX_KEY_INDEX_H_
