#include "src/index/dram_hash_index.h"

namespace pnw::index {

namespace {

constexpr size_t kInitialBuckets = 64;  // power of two

}  // namespace

uint64_t DramHashIndex::Mix(uint64_t key) {
  // splitmix64 finalizer: cheap, and spreads sequential keys across
  // power-of-two bucket masks.
  uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

DramHashIndex::DramHashIndex() {
  Table* table = static_cast<Table*>(
      arena_.Allocate(sizeof(Table), alignof(Table)));
  table->buckets = static_cast<std::atomic<Node*>*>(arena_.Allocate(
      kInitialBuckets * sizeof(std::atomic<Node*>), alignof(std::atomic<Node*>)));
  for (size_t i = 0; i < kInitialBuckets; ++i) {
    table->buckets[i].store(nullptr, std::memory_order_relaxed);
  }
  table->mask = kInitialBuckets - 1;
  table_.store(table, std::memory_order_release);
}

DramHashIndex::Node* DramHashIndex::FindNode(const Table& table,
                                             uint64_t key) const {
  Node* node = table.buckets[Mix(key) & table.mask]
                   .load(std::memory_order_acquire);
  while (node != nullptr) {
    if (node->key == key) {
      return node;
    }
    node = node->next.load(std::memory_order_acquire);
  }
  return nullptr;
}

Status DramHashIndex::Put(uint64_t key, uint64_t addr) {
  Table* table = table_.load(std::memory_order_relaxed);
  Node* node = FindNode(*table, key);
  if (node != nullptr) {
    if (!node->live.load(std::memory_order_relaxed)) {
      ++live_;  // reviving a tombstone
    }
    node->addr.store(addr, std::memory_order_relaxed);
    node->live.store(true, std::memory_order_release);
    return Status::OK();
  }
  if (nodes_ + 1 > table->mask + 1) {
    Rehash();
    table = table_.load(std::memory_order_relaxed);
  }
  node = static_cast<Node*>(arena_.Allocate(sizeof(Node), alignof(Node)));
  node->key = key;
  node->addr.store(addr, std::memory_order_relaxed);
  node->live.store(true, std::memory_order_relaxed);
  std::atomic<Node*>& head = table->buckets[Mix(key) & table->mask];
  node->next.store(head.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  // Publication point: everything written above becomes visible to any
  // reader that reaches the node through this head.
  head.store(node, std::memory_order_release);
  ++nodes_;
  ++live_;
  return Status::OK();
}

void DramHashIndex::Rehash() {
  Table* old_table = table_.load(std::memory_order_relaxed);
  const size_t new_count = (old_table->mask + 1) * 2;
  Table* table = static_cast<Table*>(
      arena_.Allocate(sizeof(Table), alignof(Table)));
  table->buckets = static_cast<std::atomic<Node*>*>(arena_.Allocate(
      new_count * sizeof(std::atomic<Node*>), alignof(std::atomic<Node*>)));
  for (size_t i = 0; i < new_count; ++i) {
    table->buckets[i].store(nullptr, std::memory_order_relaxed);
  }
  table->mask = new_count - 1;

  // Relink every node into the new array. An optimistic reader still
  // walking the OLD table may see chains mid-splice -- every pointer it
  // chases still lands in live arena memory, its traversal is step-bounded,
  // and its seqlock validation will fail (the owning store's writer lock is
  // held here). The old table and bucket array are retired into the arena,
  // never unmapped.
  for (size_t i = 0; i <= old_table->mask; ++i) {
    Node* node = old_table->buckets[i].load(std::memory_order_relaxed);
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      std::atomic<Node*>& head = table->buckets[Mix(node->key) & table->mask];
      node->next.store(head.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      head.store(node, std::memory_order_release);
      node = next;
    }
  }
  table_.store(table, std::memory_order_release);
}

Result<uint64_t> DramHashIndex::Get(uint64_t key) const {
  const Table* table = table_.load(std::memory_order_acquire);
  Node* node = FindNode(*table, key);
  if (node == nullptr || !node->live.load(std::memory_order_acquire)) {
    return Status::NotFound("key not in index");
  }
  return node->addr.load(std::memory_order_relaxed);
}

DramHashIndex::OptLookup DramHashIndex::TryGetOptimistic(
    uint64_t key, uint64_t* addr) const {
  const Table* table = table_.load(std::memory_order_acquire);
  // Step bound: any consistent chain is far shorter than the whole table
  // (load factor <= 1), so exceeding it means a concurrent restructure --
  // give up rather than risk chasing a mid-splice cycle forever.
  size_t budget = 2 * (table->mask + 1) + 64;
  Node* node = table->buckets[Mix(key) & table->mask]
                   .load(std::memory_order_acquire);
  while (node != nullptr) {
    if (budget-- == 0) {
      return OptLookup::kOverflow;
    }
    if (node->key == key) {
      if (!node->live.load(std::memory_order_acquire)) {
        return OptLookup::kMiss;
      }
      *addr = node->addr.load(std::memory_order_relaxed);
      return OptLookup::kHit;
    }
    node = node->next.load(std::memory_order_acquire);
  }
  return OptLookup::kMiss;
}

std::vector<std::pair<uint64_t, uint64_t>> DramHashIndex::LiveEntries()
    const {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(live_);
  const Table* table = table_.load(std::memory_order_acquire);
  for (size_t i = 0; i <= table->mask; ++i) {
    for (Node* node = table->buckets[i].load(std::memory_order_acquire);
         node != nullptr; node = node->next.load(std::memory_order_acquire)) {
      if (node->live.load(std::memory_order_acquire)) {
        entries.emplace_back(node->key,
                             node->addr.load(std::memory_order_relaxed));
      }
    }
  }
  return entries;
}

Status DramHashIndex::Delete(uint64_t key) {
  Table* table = table_.load(std::memory_order_relaxed);
  Node* node = FindNode(*table, key);
  if (node == nullptr || !node->live.load(std::memory_order_relaxed)) {
    return Status::NotFound("key not in index");
  }
  node->live.store(false, std::memory_order_release);
  --live_;
  return Status::OK();
}

}  // namespace pnw::index
