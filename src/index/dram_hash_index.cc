#include "src/index/dram_hash_index.h"

namespace pnw::index {

Status DramHashIndex::Put(uint64_t key, uint64_t addr) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    map_.emplace(key, Entry{addr, true});
    ++live_;
    return Status::OK();
  }
  if (!it->second.live) {
    ++live_;  // reviving a tombstone
  }
  it->second = Entry{addr, true};
  return Status::OK();
}

Result<uint64_t> DramHashIndex::Get(uint64_t key) const {
  auto it = map_.find(key);
  if (it == map_.end() || !it->second.live) {
    return Status::NotFound("key not in index");
  }
  return it->second.addr;
}

std::vector<std::pair<uint64_t, uint64_t>> DramHashIndex::LiveEntries()
    const {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(live_);
  for (const auto& [key, entry] : map_) {
    if (entry.live) {
      entries.emplace_back(key, entry.addr);
    }
  }
  return entries;
}

Status DramHashIndex::Delete(uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end() || !it->second.live) {
    return Status::NotFound("key not in index");
  }
  it->second.live = false;
  --live_;
  return Status::OK();
}

}  // namespace pnw::index
