#ifndef PNW_INDEX_PATH_HASH_INDEX_H_
#define PNW_INDEX_PATH_HASH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/index/key_index.h"
#include "src/nvm/nvm_device.h"

namespace pnw::index {

/// NVM-resident, write-friendly hash index modeled on *path hashing*
/// (Zuo & Hua, TPDS'17, cited as [20]), the index the paper persists in PCM
/// for its evaluation (Fig. 2b, "worst case scenario ... in terms of extra
/// bit flips introduced by write amplification").
///
/// Layout: an inverted complete binary tree of cells. Level 0 has
/// `num_root_cells` cells; level l has half the cells of level l-1, down to
/// `num_levels` levels. A key hashes to two root positions (h1, h2); if both
/// are taken, the *paths* below them (position >> l at level l) provide
/// standby cells. Collisions are therefore resolved with zero element
/// movement -- no rehash writes, which is what makes the scheme
/// write-friendly on NVM.
///
/// Every cell mutation goes through the NvmDevice so index write
/// amplification lands in the same counters as data-zone writes.
class PathHashIndex final : public KeyIndex {
 public:
  /// Cell layout on NVM: 8B key, 8B addr, 1B flags, 7B pad (keeps cells
  /// word-aligned).
  static constexpr size_t kCellBytes = 24;

  /// Builds an index over `device` starting at byte offset `base`,
  /// with `num_root_cells` (rounded up to a power of two) root cells and
  /// `num_levels` fallback levels.
  PathHashIndex(nvm::NvmDevice* device, uint64_t base, size_t num_root_cells,
                size_t num_levels = 8);

  /// NVM bytes required by a configuration (for sizing the device).
  static size_t StorageBytes(size_t num_root_cells, size_t num_levels);

  Status Put(uint64_t key, uint64_t addr) override;
  Result<uint64_t> Get(uint64_t key) const override;
  Status Delete(uint64_t key) override;
  size_t size() const override { return live_; }

  /// Recount the DRAM-side live-entry counter from the NVM-resident cells
  /// (a cost-free Peek scan). Called after recovery restores the device
  /// contents this index lives in: the cells come back with the data zone,
  /// but `size()` is DRAM state and must be rebuilt.
  void RebuildLiveCount();

 private:
  struct Cell {
    uint64_t key;
    uint64_t addr;
    uint8_t flags;  // bit 0: occupied/live
  };

  uint64_t CellAddr(size_t level, uint64_t position) const;
  Cell LoadCell(uint64_t cell_addr) const;
  Status StoreCell(uint64_t cell_addr, const Cell& cell);
  /// Find the cell currently holding `key`; returns the cell NVM address or
  /// NotFound. Const (Peek-only) so Get stays a concurrent read path.
  Result<uint64_t> Locate(uint64_t key) const;

  static uint64_t Hash1(uint64_t key);
  static uint64_t Hash2(uint64_t key);

  nvm::NvmDevice* device_;
  uint64_t base_;
  size_t root_cells_;  // power of two
  size_t num_levels_;
  std::vector<uint64_t> level_offsets_;  // byte offset of each level
  size_t live_ = 0;
};

}  // namespace pnw::index

#endif  // PNW_INDEX_PATH_HASH_INDEX_H_
