#include "src/index/path_hash_index.h"

#include <bit>
#include <cstring>

namespace pnw::index {

namespace {

constexpr uint8_t kLiveFlag = 0x1;

size_t RoundUpPow2(size_t v) {
  if (v <= 1) {
    return 1;
  }
  return size_t{1} << (64 - std::countl_zero(v - 1));
}

}  // namespace

PathHashIndex::PathHashIndex(nvm::NvmDevice* device, uint64_t base,
                             size_t num_root_cells, size_t num_levels)
    : device_(device),
      base_(base),
      root_cells_(RoundUpPow2(num_root_cells)),
      num_levels_(num_levels) {
  uint64_t offset = 0;
  size_t cells = root_cells_;
  for (size_t l = 0; l < num_levels_ && cells > 0; ++l) {
    level_offsets_.push_back(offset);
    offset += cells * kCellBytes;
    cells /= 2;
  }
  num_levels_ = level_offsets_.size();
}

size_t PathHashIndex::StorageBytes(size_t num_root_cells, size_t num_levels) {
  size_t cells = RoundUpPow2(num_root_cells);
  size_t total = 0;
  for (size_t l = 0; l < num_levels && cells > 0; ++l) {
    total += cells * kCellBytes;
    cells /= 2;
  }
  return total;
}

uint64_t PathHashIndex::Hash1(uint64_t key) {
  // SplitMix64 finalizer.
  uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t PathHashIndex::Hash2(uint64_t key) {
  // Murmur3 finalizer with a different stream constant.
  uint64_t z = key ^ 0xc2b2ae3d27d4eb4full;
  z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdull;
  z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ull;
  return z ^ (z >> 33);
}

uint64_t PathHashIndex::CellAddr(size_t level, uint64_t position) const {
  const size_t cells_at_level = root_cells_ >> level;
  return base_ + level_offsets_[level] +
         (position & (cells_at_level - 1)) * kCellBytes;
}

PathHashIndex::Cell PathHashIndex::LoadCell(uint64_t cell_addr) const {
  std::span<const uint8_t> raw = device_->Peek(cell_addr, kCellBytes);
  Cell cell{};
  std::memcpy(&cell.key, raw.data(), 8);
  std::memcpy(&cell.addr, raw.data() + 8, 8);
  cell.flags = raw[16];
  return cell;
}

Status PathHashIndex::StoreCell(uint64_t cell_addr, const Cell& cell) {
  uint8_t raw[kCellBytes] = {};
  std::memcpy(raw, &cell.key, 8);
  std::memcpy(raw + 8, &cell.addr, 8);
  raw[16] = cell.flags;
  auto result = device_->WriteDifferential(
      cell_addr, std::span<const uint8_t>(raw, kCellBytes));
  return result.ok() ? Status::OK() : result.status();
}

Result<uint64_t> PathHashIndex::Locate(uint64_t key) const {
  const uint64_t p1 = Hash1(key);
  const uint64_t p2 = Hash2(key);
  for (size_t l = 0; l < num_levels_; ++l) {
    for (uint64_t p : {p1 >> l, p2 >> l}) {
      const uint64_t cell_addr = CellAddr(l, p);
      const Cell cell = LoadCell(cell_addr);
      if ((cell.flags & kLiveFlag) && cell.key == key) {
        return cell_addr;
      }
    }
  }
  return Status::NotFound("key not in path-hash index");
}

void PathHashIndex::RebuildLiveCount() {
  size_t live = 0;
  for (size_t l = 0; l < num_levels_; ++l) {
    const size_t cells_at_level = root_cells_ >> l;
    for (uint64_t p = 0; p < cells_at_level; ++p) {
      if (LoadCell(CellAddr(l, p)).flags & kLiveFlag) {
        ++live;
      }
    }
  }
  live_ = live;
}

Status PathHashIndex::Put(uint64_t key, uint64_t addr) {
  // Overwrite in place if the key is already present.
  auto existing = Locate(key);
  if (existing.ok()) {
    Cell cell = LoadCell(existing.value());
    cell.addr = addr;
    return StoreCell(existing.value(), cell);
  }
  const uint64_t p1 = Hash1(key);
  const uint64_t p2 = Hash2(key);
  for (size_t l = 0; l < num_levels_; ++l) {
    for (uint64_t p : {p1 >> l, p2 >> l}) {
      const uint64_t cell_addr = CellAddr(l, p);
      const Cell cell = LoadCell(cell_addr);
      if (!(cell.flags & kLiveFlag)) {
        PNW_RETURN_IF_ERROR(
            StoreCell(cell_addr, Cell{key, addr, kLiveFlag}));
        ++live_;
        return Status::OK();
      }
    }
  }
  return Status::OutOfSpace("path-hash index: all path cells occupied");
}

Result<uint64_t> PathHashIndex::Get(uint64_t key) const {
  auto cell_addr = Locate(key);
  if (!cell_addr.ok()) {
    return cell_addr.status();
  }
  return LoadCell(cell_addr.value()).addr;
}

Status PathHashIndex::Delete(uint64_t key) {
  auto cell_addr = Locate(key);
  if (!cell_addr.ok()) {
    return cell_addr.status();
  }
  Cell cell = LoadCell(cell_addr.value());
  // The paper deletes by resetting the flag bit only -- a single-bit NVM
  // update -- leaving key/addr bytes in place.
  cell.flags = static_cast<uint8_t>(cell.flags & ~kLiveFlag);
  PNW_RETURN_IF_ERROR(StoreCell(cell_addr.value(), cell));
  --live_;
  return Status::OK();
}

}  // namespace pnw::index
