#ifndef PNW_INDEX_DRAM_HASH_INDEX_H_
#define PNW_INDEX_DRAM_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/index/key_index.h"

namespace pnw::index {

/// The Fig. 2a design: the index lives in DRAM, so it adds no NVM bit flips
/// (at the cost of a rebuild on recovery, which `PnwStore` exercises in its
/// crash-recovery test). Deletions keep a tombstone to mirror the paper's
/// flag-bit semantics.
class DramHashIndex final : public KeyIndex {
 public:
  DramHashIndex() = default;

  Status Put(uint64_t key, uint64_t addr) override;
  Result<uint64_t> Get(uint64_t key) const override;
  Status Delete(uint64_t key) override;
  size_t size() const override { return live_; }

  /// All live (key, addr) mappings, in unspecified order. Tombstones are
  /// skipped: a dead entry is observationally identical to an absent one
  /// (Get/Delete -> NotFound, Put revives either way), so checkpoints
  /// serialize only the live set.
  std::vector<std::pair<uint64_t, uint64_t>> LiveEntries() const;

 private:
  struct Entry {
    uint64_t addr;
    bool live;
  };
  std::unordered_map<uint64_t, Entry> map_;
  size_t live_ = 0;
};

}  // namespace pnw::index

#endif  // PNW_INDEX_DRAM_HASH_INDEX_H_
