#ifndef PNW_INDEX_DRAM_HASH_INDEX_H_
#define PNW_INDEX_DRAM_HASH_INDEX_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/index/key_index.h"
#include "src/util/arena.h"

namespace pnw::index {

/// The Fig. 2a design: the index lives in DRAM, so it adds no NVM bit flips
/// (at the cost of a rebuild on recovery, which `PnwStore` exercises in its
/// crash-recovery test). Deletions keep a tombstone to mirror the paper's
/// flag-bit semantics.
///
/// Layout: an open-chaining hash whose nodes and bucket arrays live in an
/// owned arena. This buys two things over the previous unordered_map:
///  - zero heap churn on the hot path (a delete+reinsert cycle recycles the
///    tombstoned node in place; new nodes come from the arena free list);
///  - a lock-free *optimistic* lookup (TryGetOptimistic) for the seqlock
///    Get path. Nodes are never freed or reused for a different key while
///    the index is alive, and retired bucket arrays stay mapped in the
///    arena, so a reader racing a writer can always dereference safely;
///    the seqlock validation discards any torn result afterwards.
///
/// Mutators (Put/Delete) are externally serialized by the owning store's
/// exclusive lock, exactly like before; Get and TryGetOptimistic are safe
/// concurrently with them.
class DramHashIndex final : public KeyIndex {
 public:
  DramHashIndex();
  ~DramHashIndex() override = default;  // nodes are trivially destructible

  Status Put(uint64_t key, uint64_t addr) override;
  Result<uint64_t> Get(uint64_t key) const override;
  Status Delete(uint64_t key) override;
  size_t size() const override { return live_; }

  /// Lock-free bounded lookup for the seqlock optimistic read path.
  /// Returns kHit with *addr set, kMiss when the key is absent/tombstoned,
  /// or kOverflow when the traversal exceeded its step bound (a writer is
  /// restructuring the table) -- the caller falls back to the locked path.
  /// Any value observed here MUST be discarded unless the caller's seqlock
  /// validation succeeds.
  enum class OptLookup { kHit, kMiss, kOverflow };
  OptLookup TryGetOptimistic(uint64_t key, uint64_t* addr) const;

  /// All live (key, addr) mappings, in unspecified order. Tombstones are
  /// skipped: a dead entry is observationally identical to an absent one
  /// (Get/Delete -> NotFound, Put revives either way), so checkpoints
  /// serialize only the live set.
  std::vector<std::pair<uint64_t, uint64_t>> LiveEntries() const;

  /// Allocator counters of the arena holding nodes and bucket arrays.
  util::ArenaStats arena_stats() const { return arena_.Stats(); }

 private:
  struct Node {
    uint64_t key;                  // immutable after publication
    std::atomic<uint64_t> addr;
    std::atomic<bool> live;
    std::atomic<Node*> next;
  };

  /// One resolved bucket array; readers snapshot the table pointer, so a
  /// rehash can swing to a bigger array without invalidating them.
  struct Table {
    std::atomic<Node*>* buckets;
    size_t mask;  // bucket_count - 1 (power of two)
  };

  static uint64_t Mix(uint64_t key);
  Node* FindNode(const Table& table, uint64_t key) const;
  void Rehash();

  util::Arena arena_;
  std::atomic<Table*> table_;
  size_t nodes_ = 0;  // live + tombstoned (rehash threshold)
  size_t live_ = 0;
};

}  // namespace pnw::index

#endif  // PNW_INDEX_DRAM_HASH_INDEX_H_
